"""A TPC-H-style scenario family with seeded violation injection.

A miniature TPC-H schema (region/nation/supplier/customer/part/partsupp/
orders/lineitem) is exchanged into a target star: one copy tgd per source
relation, two denormalization **join** tgds (``order_customer``,
``line_supply``), and one target-side join tgd (``order_nation``) so the
chase needs more than one round.  Key egds on the single-key targets make
injected duplicates visible as violations — and, through the join tgds,
propagate them across relations.

Instances are generated on a ``scale factor × violation-injection ratio ×
seed`` grid, mirroring the related repo's ``inject_violations.py`` design:
base cardinalities are TPC-H SF 1 numbers scaled linearly (with small
floors), and a ``ratio`` fraction of the rows of each keyed relation gets
a competing duplicate — same key, one non-key attribute altered.  The
generator is a **pure function** of ``(scale, ratio, seed)``: every draw
comes from one ``random.Random(f"tpch:{scale}:{ratio}:{seed}")``, so the
same cell is byte-identical across runs, processes, and ``--jobs`` fans.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Variable

# Fuzz-profile cells stay tiny (differential runs solve stable models per
# cluster); the benchmark grid goes up to SF 0.01-0.1.
TPCH_FUZZ_SCALES = (0.002, 0.003, 0.005)
TPCH_FUZZ_RATIOS = (0.0, 0.2, 0.5)

# (name, arity, SF-1 cardinality, floor).  Arities cover key + payload.
_SOURCES = (
    ("region", 2, 5, 1),
    ("nation", 3, 25, 2),
    ("supplier", 3, 1000, 2),
    ("customer", 4, 1500, 2),
    ("part", 3, 2000, 2),
    ("partsupp", 3, 3000, 2),
    ("orders", 3, 3000, 2),
    ("lineitem", 4, 6000, 3),
)

# Relations with a single-attribute key (position 0) that receive both
# injected duplicates and target key egds.  partsupp/lineitem have
# composite keys and are left unkeyed (duplicating them would not violate
# anything our egds express).
_KEYED = ("region", "nation", "supplier", "customer", "part", "orders")


def _vars(prefix: str, count: int) -> list[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(count)]


def _key_egds(relation: str, arity: int, tag: str) -> list[EGD]:
    """Key on position 0: one egd per dependent attribute."""
    first = _vars("a", arity)
    second = [first[0]] + _vars("b", arity - 1)
    return [
        EGD(
            [Atom(relation, first), Atom(relation, second)],
            first[position],
            second[position],
            label=f"key_{tag}_{position}",
        )
        for position in range(1, arity)
    ]


def tpch_mapping() -> SchemaMapping:
    """The fixed mini-TPC-H schema mapping (instance-independent)."""
    source_rels = [RelationSymbol(name, arity) for name, arity, _n, _f in _SOURCES]
    target_rels = [
        RelationSymbol(f"t_{name}", arity) for name, arity, _n, _f in _SOURCES
    ]
    st_tgds = []
    for name, arity, _n, _f in _SOURCES:
        xs = _vars("x", arity)
        st_tgds.append(
            TGD([Atom(name, xs)], [Atom(f"t_{name}", xs)], label=f"copy_{name}")
        )

    o, c, status = Variable("o"), Variable("c"), Variable("st")
    nk, cname, mkt = Variable("nk"), Variable("cn"), Variable("mk")
    # orders ⋈ customer → order_customer(orderkey, custkey, nationkey)
    order_customer = RelationSymbol("order_customer", 3)
    st_tgds.append(
        TGD(
            [Atom("orders", [o, c, status]), Atom("customer", [c, cname, nk, mkt])],
            [Atom("order_customer", [o, c, nk])],
            label="join_order_customer",
        )
    )
    # lineitem ⋈ partsupp → line_supply(orderkey, partkey, suppkey, availqty)
    p, s, qty, avail = Variable("p"), Variable("s"), Variable("q"), Variable("av")
    line_supply = RelationSymbol("line_supply", 4)
    st_tgds.append(
        TGD(
            [Atom("lineitem", [o, p, s, qty]), Atom("partsupp", [p, s, avail])],
            [Atom("line_supply", [o, p, s, avail])],
            label="join_line_supply",
        )
    )
    # Target-side join (round 2 of the chase):
    # order_customer ⋈ t_nation → order_nation(orderkey, nationkey, regionkey)
    nname, rk = Variable("nn"), Variable("rk")
    order_nation = RelationSymbol("order_nation", 3)
    target_tgds = [
        TGD(
            [Atom("order_customer", [o, c, nk]), Atom("t_nation", [nk, nname, rk])],
            [Atom("order_nation", [o, nk, rk])],
            label="join_order_nation",
        )
    ]

    target_egds = []
    for name, arity, _n, _f in _SOURCES:
        if name in _KEYED:
            target_egds.extend(_key_egds(f"t_{name}", arity, name))
    target_egds.extend(_key_egds("order_customer", 3, "order_customer"))
    target_egds.extend(_key_egds("order_nation", 3, "order_nation"))

    return SchemaMapping(
        Schema(source_rels),
        Schema(target_rels + [order_customer, line_supply, order_nation]),
        st_tgds,
        target_tgds,
        target_egds,
    )


@dataclass(frozen=True)
class TPCHScenario:
    """One grid cell: the mapping, the instance, and what was injected."""

    mapping: SchemaMapping
    instance: Instance
    # The duplicate rows added by violation injection (subset of instance).
    injected: tuple[Fact, ...]
    scale: float
    ratio: float
    seed: int
    label: str


def _cardinality(base: int, floor: int, scale: float) -> int:
    return max(floor, round(base * scale))


def tpch_scenario(scale: float, ratio: float, seed: int) -> TPCHScenario:
    """Generate the ``(scale, ratio, seed)`` cell of the TPC-H grid.

    Deterministic: one seeded RNG drives every draw, in a fixed relation
    order, so the returned instance (and the injected-violation set) is
    byte-identical for the same cell regardless of process or parallelism.
    """
    if scale <= 0:
        raise ValueError("scale factor must be positive")
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("violation-injection ratio must be in [0, 1]")
    rng = random.Random(f"tpch:{scale}:{ratio}:{seed}")
    counts = {
        name: _cardinality(base, floor, scale)
        for name, _arity, base, floor in _SOURCES
    }
    keys = {name: [f"{name[0]}{i}" for i in range(counts[name])] for name in counts}

    rows: dict[str, list[list[str]]] = {}
    rows["region"] = [[k, f"region_{k}"] for k in keys["region"]]
    rows["nation"] = [
        [k, f"nation_{k}", rng.choice(keys["region"])] for k in keys["nation"]
    ]
    rows["supplier"] = [
        [k, f"supplier_{k}", rng.choice(keys["nation"])] for k in keys["supplier"]
    ]
    rows["customer"] = [
        [
            k,
            f"customer_{k}",
            rng.choice(keys["nation"]),
            rng.choice(("building", "machinery", "household")),
        ]
        for k in keys["customer"]
    ]
    rows["part"] = [
        [k, f"part_{k}", f"brand_{rng.randint(1, 5)}"] for k in keys["part"]
    ]
    seen_ps: set[tuple[str, str]] = set()
    rows["partsupp"] = []
    for _ in range(counts["partsupp"]):
        pair = (rng.choice(keys["part"]), rng.choice(keys["supplier"]))
        if pair not in seen_ps:
            seen_ps.add(pair)
            rows["partsupp"].append([pair[0], pair[1], str(rng.randint(1, 999))])
    rows["orders"] = [
        [k, rng.choice(keys["customer"]), rng.choice(("O", "F", "P"))]
        for k in keys["orders"]
    ]
    rows["lineitem"] = []
    for _ in range(counts["lineitem"]):
        if rows["partsupp"]:
            part_key, supp_key, _avail = rng.choice(rows["partsupp"])
        else:  # pragma: no cover - partsupp floor is 2
            part_key, supp_key = rng.choice(keys["part"]), rng.choice(keys["supplier"])
        rows["lineitem"].append(
            [rng.choice(keys["orders"]), part_key, supp_key, str(rng.randint(1, 50))]
        )

    # Violation injection: a `ratio` fraction of each keyed relation's rows
    # gets a competing duplicate — same key, one altered non-key attribute.
    injected: list[Fact] = []
    for name in _KEYED:
        arity = len(rows[name][0])
        for row in list(rows[name]):
            if rng.random() < ratio:
                position = rng.randrange(1, arity)
                clash = list(row)
                clash[position] = f"{clash[position]}_dup"
                rows[name].append(clash)
                injected.append(Fact(name, clash))

    instance = Instance(
        Fact(name, row) for name in rows for row in rows[name]
    )
    return TPCHScenario(
        mapping=tpch_mapping(),
        instance=instance,
        injected=tuple(injected),
        scale=scale,
        ratio=ratio,
        seed=seed,
        label=f"tpch sf={scale} ratio={ratio} seed={seed}",
    )


_TPCH_NAME_RE = re.compile(r"^tpch-sf(?P<scale>[0-9.]+)-r(?P<ratio>[0-9.]+)$")


def tpch_cell_name(scale: float, ratio: float) -> str:
    """The benchmark scenario name of a grid cell, e.g. ``tpch-sf0.01-r0.2``."""
    return f"tpch-sf{scale:g}-r{ratio:g}"


def parse_tpch_name(name: str) -> tuple[float, float]:
    """Invert :func:`tpch_cell_name`; raises ``ValueError`` otherwise."""
    match = _TPCH_NAME_RE.match(name)
    if match is None:
        raise ValueError(
            f"not a tpch scenario name: {name!r} (want tpch-sfS-rR)"
        )
    return float(match.group("scale")), float(match.group("ratio"))
