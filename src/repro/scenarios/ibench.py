"""iBench-style mapping primitives and scenario generation.

A :class:`ScenarioBuilder` accumulates primitives; each primitive
contributes a source relation (or two), target relations, s-t tgds, and —
where the primitive has a natural key — key egds exposing conflicts.
``build()`` returns an :class:`IBenchScenario` bundling the schema mapping
with a seeded source-instance generator whose *conflict rate* controls the
fraction of keys receiving two competing rows.

Primitives (names follow iBench where they coincide):

=============  =============================================================
``copy``       ``R(x̄) → T(x̄)`` with a key on the first attribute
``projection`` ``R(x̄) → T(x̄|keep)`` (iBench DL: delete attributes)
``augment``    ``R(x̄) → ∃ȳ T(x̄, ȳ)`` (iBench ADD: added attributes)
``vpartition`` ``R(k, ā, b̄) → T1(k, ā), T2(k, b̄)`` (iBench VP)
``fusion``     ``Ra(x̄) → T(x̄)``, ``Rb(x̄) → T(x̄)`` (iBench-style merge —
               the two sources compete on T's key, the conflict channel)
``selfjoin``   ``R(x, y) → T(x, y)`` plus transitive closure on ``T``
               (target tgds beyond GAV; weakly acyclic)
=============  =============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Variable


def _vars(prefix: str, count: int) -> list[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(count)]


def _key_egds(relation: str, arity: int, tag: str) -> list[EGD]:
    """Key on position 0: one egd per dependent attribute."""
    first = _vars("a", arity)
    second = [first[0]] + _vars("b", arity - 1)
    egds = []
    for position in range(1, arity):
        egds.append(
            EGD(
                [Atom(relation, first), Atom(relation, second)],
                first[position],
                second[position],
                label=f"key_{tag}_{position}",
            )
        )
    return egds


@dataclass
class _Primitive:
    """One instantiated primitive: its schema pieces plus a row emitter."""

    name: str
    source_relations: list[RelationSymbol]
    target_relations: list[RelationSymbol]
    st_tgds: list[TGD]
    target_tgds: list[TGD] = field(default_factory=list)
    target_egds: list[EGD] = field(default_factory=list)
    # emit(instance, rng, key_index, conflicted) -> None
    emit: Callable[[Instance, random.Random, int, bool], None] = None  # type: ignore[assignment]


class ScenarioBuilder:
    """Accumulates iBench-style primitives into one schema mapping."""

    def __init__(self) -> None:
        self._primitives: list[_Primitive] = []
        self._counter = 0

    # ------------------------------------------------------------ plumbing

    def _tag(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}{self._counter}"

    def _add(self, primitive: _Primitive) -> "ScenarioBuilder":
        self._primitives.append(primitive)
        return self

    # ----------------------------------------------------------- primitives

    def copy(self, arity: int = 3) -> "ScenarioBuilder":
        tag = self._tag("cp")
        src, tgt = f"R_{tag}", f"T_{tag}"
        xs = _vars("x", arity)
        tgd = TGD([Atom(src, xs)], [Atom(tgt, xs)], label=tag)

        def emit(instance, rng, key, conflicted):
            row = [f"{tag}_k{key}"] + [
                f"{tag}_v{key}_{i}" for i in range(arity - 1)
            ]
            instance.add(Fact(src, row))
            if conflicted:
                clash = list(row)
                clash[-1] = f"{tag}_alt{key}"
                instance.add(Fact(src, clash))

        return self._add(
            _Primitive(
                tag,
                [RelationSymbol(src, arity)],
                [RelationSymbol(tgt, arity)],
                [tgd],
                target_egds=_key_egds(tgt, arity, tag),
                emit=emit,
            )
        )

    def projection(self, arity: int = 4, keep: int = 2) -> "ScenarioBuilder":
        if not 1 <= keep <= arity:
            raise ValueError("keep must be between 1 and arity")
        tag = self._tag("dl")
        src, tgt = f"R_{tag}", f"T_{tag}"
        xs = _vars("x", arity)
        tgd = TGD([Atom(src, xs)], [Atom(tgt, xs[:keep])], label=tag)

        def emit(instance, rng, key, conflicted):
            row = [f"{tag}_k{key}"] + [
                f"{tag}_v{key}_{i}" for i in range(arity - 1)
            ]
            instance.add(Fact(src, row))
            if conflicted and keep >= 2:
                clash = list(row)
                clash[keep - 1] = f"{tag}_alt{key}"
                instance.add(Fact(src, clash))

        return self._add(
            _Primitive(
                tag,
                [RelationSymbol(src, arity)],
                [RelationSymbol(tgt, keep)],
                [tgd],
                target_egds=_key_egds(tgt, keep, tag) if keep >= 2 else [],
                emit=emit,
            )
        )

    def augment(self, arity: int = 2, added: int = 2) -> "ScenarioBuilder":
        tag = self._tag("add")
        src, tgt = f"R_{tag}", f"T_{tag}"
        xs = _vars("x", arity)
        ys = _vars("y", added)
        tgd = TGD([Atom(src, xs)], [Atom(tgt, xs + ys)], label=tag)

        def emit(instance, rng, key, conflicted):
            row = [f"{tag}_k{key}"] + [
                f"{tag}_v{key}_{i}" for i in range(arity - 1)
            ]
            instance.add(Fact(src, row))
            if conflicted and arity >= 2:
                clash = list(row)
                clash[-1] = f"{tag}_alt{key}"
                instance.add(Fact(src, clash))

        return self._add(
            _Primitive(
                tag,
                [RelationSymbol(src, arity)],
                [RelationSymbol(tgt, arity + added)],
                [tgd],
                target_egds=_key_egds(tgt, arity + added, tag),
                emit=emit,
            )
        )

    def vpartition(self, left: int = 2, right: int = 2) -> "ScenarioBuilder":
        tag = self._tag("vp")
        src = f"R_{tag}"
        first, second = f"T_{tag}a", f"T_{tag}b"
        arity = 1 + left + right
        key = _vars("k", 1)
        ls, rs = _vars("l", left), _vars("r", right)
        tgd = TGD(
            [Atom(src, key + ls + rs)],
            [Atom(first, key + ls), Atom(second, key + rs)],
            label=tag,
        )

        def emit(instance, rng, index, conflicted):
            row = [f"{tag}_k{index}"] + [
                f"{tag}_v{index}_{i}" for i in range(arity - 1)
            ]
            instance.add(Fact(src, row))
            if conflicted:
                clash = list(row)
                clash[1] = f"{tag}_alt{index}"  # clash inside the left part
                instance.add(Fact(src, clash))

        return self._add(
            _Primitive(
                tag,
                [RelationSymbol(src, arity)],
                [
                    RelationSymbol(first, 1 + left),
                    RelationSymbol(second, 1 + right),
                ],
                [tgd],
                target_egds=_key_egds(first, 1 + left, f"{tag}a")
                + _key_egds(second, 1 + right, f"{tag}b"),
                emit=emit,
            )
        )

    def fusion(self, arity: int = 3) -> "ScenarioBuilder":
        tag = self._tag("fu")
        src_a, src_b, tgt = f"Ra_{tag}", f"Rb_{tag}", f"T_{tag}"
        xs = _vars("x", arity)
        tgds = [
            TGD([Atom(src_a, xs)], [Atom(tgt, xs)], label=f"{tag}a"),
            TGD([Atom(src_b, xs)], [Atom(tgt, xs)], label=f"{tag}b"),
        ]

        def emit(instance, rng, key, conflicted):
            row = [f"{tag}_k{key}"] + [
                f"{tag}_v{key}_{i}" for i in range(arity - 1)
            ]
            instance.add(Fact(src_a, row))
            other = list(row)
            if conflicted:
                other[-1] = f"{tag}_alt{key}"  # the two sources disagree
            instance.add(Fact(src_b, other))

        return self._add(
            _Primitive(
                tag,
                [RelationSymbol(src_a, arity), RelationSymbol(src_b, arity)],
                [RelationSymbol(tgt, arity)],
                tgds,
                target_egds=_key_egds(tgt, arity, tag),
                emit=emit,
            )
        )

    def selfjoin(self, chain: int = 3) -> "ScenarioBuilder":
        """Successor edges with a functional constraint, transitively closed
        into a separate reachability relation (the egd must live on the
        *base* edges: a functional egd on the closure itself would be
        violated by any chain of length ≥ 2)."""
        tag = self._tag("sj")
        src, tgt, closed = f"R_{tag}", f"T_{tag}", f"TC_{tag}"
        x, y, z = _vars("v", 3)
        st_tgd = TGD([Atom(src, [x, y])], [Atom(tgt, [x, y])], label=tag)
        lift = TGD([Atom(tgt, [x, y])], [Atom(closed, [x, y])], label=f"{tag}_lift")
        closure = TGD(
            [Atom(closed, [x, y]), Atom(closed, [y, z])],
            [Atom(closed, [x, z])],
            label=f"{tag}_trans",
        )

        def emit(instance, rng, key, conflicted):
            # A short chain per key; a conflict forks the chain's head so
            # the functional-successor egd fires there.
            base = f"{tag}_n{key}"
            for step in range(chain):
                instance.add(Fact(src, (f"{base}_{step}", f"{base}_{step + 1}")))
            if conflicted:
                instance.add(Fact(src, (f"{base}_0", f"{base}_fork")))

        successor = EGD(
            [Atom(tgt, [x, y]), Atom(tgt, [x, z])],
            y,
            z,
            label=f"{tag}_fun",
        )
        return self._add(
            _Primitive(
                tag,
                [RelationSymbol(src, 2)],
                [RelationSymbol(tgt, 2), RelationSymbol(closed, 2)],
                [st_tgd],
                target_tgds=[lift, closure],
                target_egds=[successor],
                emit=emit,
            )
        )

    # --------------------------------------------------------------- build

    def build(self) -> "IBenchScenario":
        if not self._primitives:
            raise ValueError("add at least one primitive before building")
        source, target = Schema(), Schema()
        st_tgds, target_tgds, target_egds = [], [], []
        for primitive in self._primitives:
            for relation in primitive.source_relations:
                source.add(relation)
            for relation in primitive.target_relations:
                target.add(relation)
            st_tgds.extend(primitive.st_tgds)
            target_tgds.extend(primitive.target_tgds)
            target_egds.extend(primitive.target_egds)
        mapping = SchemaMapping(source, target, st_tgds, target_tgds, target_egds)
        return IBenchScenario(mapping=mapping, primitives=list(self._primitives))


@dataclass
class IBenchScenario:
    """A built scenario: the mapping plus a seeded instance generator."""

    mapping: SchemaMapping
    primitives: list[_Primitive]

    def generate(
        self,
        keys_per_primitive: int = 10,
        conflict_rate: float = 0.1,
        seed: int = 0,
    ) -> Instance:
        """A source instance with ~``conflict_rate`` of keys conflicted."""
        rng = random.Random(seed)
        instance = Instance()
        for primitive in self.primitives:
            for key in range(keys_per_primitive):
                conflicted = rng.random() < conflict_rate
                primitive.emit(instance, rng, key, conflicted)
        return instance


PRIMITIVES = ("copy", "projection", "augment", "vpartition", "fusion", "selfjoin")


def random_ibench_scenario(
    seed: int,
    size: int = 4,
) -> IBenchScenario:
    """A random composition of ``size`` primitives (seeded)."""
    rng = random.Random(seed)
    builder = ScenarioBuilder()
    for _ in range(size):
        kind = rng.choice(PRIMITIVES)
        if kind == "copy":
            builder.copy(arity=rng.randint(2, 4))
        elif kind == "projection":
            arity = rng.randint(2, 5)
            builder.projection(arity=arity, keep=rng.randint(2, arity))
        elif kind == "augment":
            builder.augment(arity=rng.randint(2, 3), added=rng.randint(1, 2))
        elif kind == "vpartition":
            builder.vpartition(left=rng.randint(1, 3), right=rng.randint(1, 3))
        elif kind == "fusion":
            builder.fusion(arity=rng.randint(2, 4))
        else:
            builder.selfjoin(chain=rng.randint(2, 4))
    return builder.build()
