"""Synthetic schema-mapping scenarios in the style of iBench.

The paper's concluding remarks name iBench (Arocena, Glavic, Ciucanu,
Miller, PVLDB 2015) as the intended vehicle for broader evaluation of the
segmentary implementation.  This package provides the same kind of
building blocks: parameterized *mapping primitives* (copy, projection,
attribute addition, vertical partitioning, fusion, self-join closure) that
compose into ``glav+(wa-glav, egd)`` schema mappings, plus a seeded source
generator with a controllable conflict rate — so XR-Certain engines can be
exercised on arbitrarily shaped mappings, not just the Genome Browser one.
"""

from repro.scenarios.ibench import (
    PRIMITIVES,
    IBenchScenario,
    ScenarioBuilder,
    random_ibench_scenario,
)
from repro.scenarios.tpch import (
    TPCH_FUZZ_RATIOS,
    TPCH_FUZZ_SCALES,
    TPCHScenario,
    parse_tpch_name,
    tpch_cell_name,
    tpch_mapping,
    tpch_scenario,
)

__all__ = [
    "PRIMITIVES",
    "IBenchScenario",
    "ScenarioBuilder",
    "random_ibench_scenario",
    "TPCH_FUZZ_RATIOS",
    "TPCH_FUZZ_SCALES",
    "TPCHScenario",
    "parse_tpch_name",
    "tpch_cell_name",
    "tpch_mapping",
    "tpch_scenario",
]
