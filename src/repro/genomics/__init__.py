"""The UCSC Genome Browser benchmark scenario (Section 5).

A data-exchange setting mimicking the genome browser's data import process:

- **sources** (Table 1): the given part of UCSC's gene model
  (``ComputedAlignments``, ``ComputedCrossref``), five RefSeq relations,
  ``EntrezGene``, and ``UniProt``;
- **targets**: the genome-browser tables ``knownGene``, ``kgXref``,
  ``refLink``, ``knownToLocusLink``, and ``knownIsoforms``;
- **constraints** (Figure 2): key egds on ``knownGene`` and ``kgXref``
  expose (A) competing exon counts between UCSC and RefSeq and (B) competing
  gene symbols between RefSeq and EntrezGene; (C) transcripts sharing an
  Entrez gene id or a gene symbol are forced into the same isoform cluster —
  egds equating existentially-invented cluster ids, the differentiating
  feature of weakly acyclic mappings.

The original experiments use real UCSC/NCBI dumps; offline, the
:mod:`repro.genomics.generator` synthesizes instances with the same schema,
conflict structure, and controllable size / suspect-rate — the two axes the
paper's evaluation varies (Table 2).
"""

from repro.genomics.schema import genome_mapping, source_schema, target_schema
from repro.genomics.generator import GenomeDataGenerator, GeneratorConfig
from repro.genomics.instances import (
    INSTANCE_PROFILES,
    InstanceProfile,
    build_instance,
)
from repro.genomics.queries import QUERY_SUITE, query_by_name

__all__ = [
    "genome_mapping",
    "source_schema",
    "target_schema",
    "GenomeDataGenerator",
    "GeneratorConfig",
    "INSTANCE_PROFILES",
    "InstanceProfile",
    "build_instance",
    "QUERY_SUITE",
    "query_by_name",
]
