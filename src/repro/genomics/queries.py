"""The query suite of Table 3.

Five EQUIP queries (ep1/2/3/15/16 — the ones applicable to the target
schema) and six new XR queries exercising the critical parts of the mapping:
what is XR-Certain in ``knownGene`` (xr1–xr3) and which transcript pairs
certainly share an isoform cluster (xr4–xr6).  Attribute positions follow
our target schema (see :mod:`repro.genomics.schema`), which matches the
positions used in the paper's listing.
"""

from __future__ import annotations

from functools import lru_cache

from repro.parser import parse_query
from repro.relational.queries import ConjunctiveQuery

_QUERY_TEXTS = [
    # EQUIP-derived queries: refLink ⋈ kgXref on the gene symbol.
    ("ep1", "ep1() :- refLink(symbol, _, acc, protacc, _, _, _, _), "
            "kgXref(ucscid, _, spid, _, symbol, _, _, _, _, _)."),
    ("ep2", "ep2(protacc) :- refLink(symbol, _, acc, protacc, _, _, _, _), "
            "kgXref(ucscid, _, spid, _, symbol, _, _, _, _, _)."),
    ("ep3", "ep3(protacc, spid) :- refLink(symbol, _, acc, protacc, _, _, _, _), "
            "kgXref(ucscid, _, spid, _, symbol, _, _, _, _, _)."),
    # kgXref ⋈ refLink on the RefSeq accession.
    ("ep15", "ep15(symbol) :- kgXref(ucscid, _, _, _, symbol, refseq, _, _, _, _), "
             "refLink(_, product, refseq, _, _, _, entrez, _)."),
    ("ep16", "ep16(symbol, entrez) :- kgXref(ucscid, _, _, _, symbol, refseq, _, _, _, _), "
             "refLink(_, product, refseq, _, _, _, entrez, _)."),
    # XR queries over knownGene (boolean / projection / projection-free).
    ("xr1", "xr1() :- knownGene(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, alignid)."),
    ("xr2", "xr2(kgid) :- knownGene(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, alignid)."),
    ("xr3", "xr3(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, ai) :- "
            "knownGene(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, ai)."),
    # XR queries over knownIsoforms (co-clustered transcripts).
    ("xr4", "xr4() :- knownIsoforms(cluster, transcript1), knownIsoforms(cluster, transcript2)."),
    ("xr5", "xr5(transcript1) :- knownIsoforms(cluster, transcript1), "
            "knownIsoforms(cluster, transcript2)."),
    ("xr6", "xr6(transcript1, transcript2) :- knownIsoforms(cluster, transcript1), "
            "knownIsoforms(cluster, transcript2)."),
]


@lru_cache(maxsize=1)
def _suite() -> dict[str, ConjunctiveQuery]:
    return {name: parse_query(text) for name, text in _QUERY_TEXTS}


QUERY_SUITE: tuple[str, ...] = tuple(name for name, _ in _QUERY_TEXTS)


def query_by_name(name: str) -> ConjunctiveQuery:
    """Look up a Table 3 query by its paper name (``ep1`` ... ``xr6``)."""
    suite = _suite()
    if name not in suite:
        raise KeyError(f"unknown query {name!r}; suite: {sorted(suite)}")
    return suite[name]


def query_text_by_name(name: str) -> str:
    """The surface-syntax text of a Table 3 query (for wire protocols —
    ``repro bench --serve`` clients send query *text*, not objects)."""
    for candidate, text in _QUERY_TEXTS:
        if candidate == name:
            return text
    raise KeyError(f"unknown query {name!r}; suite: {sorted(QUERY_SUITE)}")


def all_queries() -> list[tuple[str, ConjunctiveQuery]]:
    return [(name, query_by_name(name)) for name in QUERY_SUITE]
