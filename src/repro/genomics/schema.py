"""Schemas and the schema mapping of the Genome Browser scenario (§5, Fig. 2).

Source relations follow Table 1's shape (UCSC: 2 relations / 13 attributes;
RefSeq: 5 relations / 38 attributes; EntrezGene and UniProt: 1 relation / 3
attributes each).  Target relations are the Genome Browser tables touched by
the paper's query suite, with their documented arities (``knownGene``/12,
``kgXref``/10, ``refLink``/8, ``knownToLocusLink``/2, ``knownIsoforms``/2).

The mapping wires up the three critical conflict channels of Figure 2:

(A) ``knownGene.exonCount`` receives the UCSC alignment's value *and* the
    RefSeq transcript's value; the key egd on ``knownGene.name`` exposes
    disagreements.
(B) ``kgXref.geneSymbol`` receives the RefSeq gene symbol, the EntrezGene
    symbol, and the UniProt symbol; the key egd on ``kgXref.kgID`` exposes
    disagreements.
(C) ``knownIsoforms`` clusters transcripts by existentially-invented cluster
    ids which egds force equal when transcripts share an Entrez gene id or a
    gene symbol — equalities between labelled nulls, the weakly acyclic
    showcase.
"""

from __future__ import annotations

from functools import lru_cache

from repro.dependencies.mapping import SchemaMapping
from repro.parser import parse_dependency
from repro.relational.schema import RelationSymbol, Schema


def source_schema() -> Schema:
    """The source schema (Table 1 shapes)."""
    return Schema(
        [
            RelationSymbol(
                "ComputedAlignments",
                10,
                [
                    "kgID", "chrom", "strand", "txStart", "txEnd",
                    "cdsStart", "cdsEnd", "exonCount", "exons", "alignID",
                ],
            ),
            RelationSymbol(
                "ComputedCrossref", 3, ["kgID", "refseqAcc", "protAcc"]
            ),
            RelationSymbol(
                "RefSeqTranscript",
                8,
                [
                    "acc", "version", "gi", "length",
                    "moltype", "exonCount", "lastUpdate", "comment",
                ],
            ),
            RelationSymbol(
                "RefSeqSource",
                6,
                ["acc", "organism", "taxonId", "chromosome", "mapLoc", "tech"],
            ),
            RelationSymbol(
                "RefSeqReference",
                8,
                [
                    "acc", "pmid", "authors", "title",
                    "journal", "year", "medline", "remark",
                ],
            ),
            RelationSymbol(
                "RefSeqGene",
                8,
                [
                    "acc", "geneSymbol", "entrezId", "synonyms",
                    "dbXref", "description", "locusTag", "geneId2",
                ],
            ),
            RelationSymbol(
                "RefSeqProtein",
                8,
                [
                    "acc", "protAcc", "product", "proteinGi",
                    "codedBy", "note", "ec", "length2",
                ],
            ),
            RelationSymbol("EntrezGene", 3, ["entrezId", "symbol", "description"]),
            RelationSymbol("UniProt", 3, ["spID", "displayID", "geneSymbol"]),
        ]
    )


def target_schema() -> Schema:
    """The target schema: the Genome Browser tables used by the query suite."""
    return Schema(
        [
            RelationSymbol(
                "knownGene",
                12,
                [
                    "name", "chrom", "strand", "txStart", "txEnd", "cdsStart",
                    "cdsEnd", "exonCount", "exonStarts", "exonEnds",
                    "proteinID", "alignID",
                ],
            ),
            RelationSymbol(
                "kgXref",
                10,
                [
                    "kgID", "mRNA", "spID", "spDisplayID", "geneSymbol",
                    "refseq", "protAcc", "description", "rfamAcc", "tRnaName",
                ],
            ),
            RelationSymbol(
                "refLink",
                8,
                [
                    "name", "product", "mrnaAcc", "protAcc",
                    "geneName", "prodName", "locusLinkId", "omimId",
                ],
            ),
            RelationSymbol("knownToLocusLink", 2, ["name", "value"]),
            RelationSymbol("knownIsoforms", 2, ["clusterId", "transcript"]),
        ]
    )


_ST_TGDS = [
    # UCSC alignments populate knownGene (proteinID from the crossref; the
    # exon-coordinate blob fills both exonStarts and exonEnds).
    (
        "kg_ucsc",
        "ComputedAlignments(kg, ch, st, ts, te, cs, ce, ec, ex, align), "
        "ComputedCrossref(kg, rs, pr) "
        "-> knownGene(kg, ch, st, ts, te, cs, ce, ec, ex, ex, pr, align).",
    ),
    # (A) RefSeq's view of the exon count flows into knownGene too: the row
    # copies the alignment's attributes but carries RefSeq's exon count, so
    # the key egd on knownGene.name exposes any disagreement.  (Copying the
    # other attributes rather than inventing nulls keeps repair envelopes
    # transcript-local: a fresh null per attribute would get egd-merged with
    # globally shared constants like the strand, entangling every
    # transcript's envelope with every other's.)
    (
        "kg_refseq",
        "ComputedAlignments(kg, ch, st, ts, te, cs, ce, ec0, ex, align), "
        "ComputedCrossref(kg, rs, pr), "
        "RefSeqTranscript(rs, ver, gi, len, mt, ec, lu, cm) "
        "-> knownGene(kg, ch, st, ts, te, cs, ce, ec, ex, ex, pr, align).",
    ),
    # (B1) kgXref with the RefSeq gene symbol.
    (
        "xref_refseq",
        "ComputedCrossref(kg, rs, pr), "
        "RefSeqGene(rs, sym, ez, syn, dbx, desc, lt, g2) "
        "-> kgXref(kg, mrna, pr, spdisp, sym, rs, pr, desc, rfam, trna).",
    ),
    # (B2) kgXref with the EntrezGene symbol (via the RefSeq gene link).
    (
        "xref_entrez",
        "ComputedCrossref(kg, rs, pr), "
        "RefSeqGene(rs, sym0, ez, syn, dbx, desc0, lt, g2), "
        "EntrezGene(ez, sym, desc) "
        "-> kgXref(kg, mrna, pr, spdisp, sym, rs, pr, desc, rfam, trna).",
    ),
    # (B3) kgXref with the UniProt symbol (via the crossref protein id).
    (
        "xref_uniprot",
        "ComputedCrossref(kg, rs, pr), UniProt(pr, disp, sym) "
        "-> kgXref(kg, mrna, pr, disp, sym, rs, pr, desc, rfam, trna).",
    ),
    # refLink rows from the RefSeq nested records.
    (
        "reflink",
        "RefSeqGene(rs, sym, ez, syn, dbx, desc, lt, g2), "
        "RefSeqTranscript(rs, ver, gi, len, mt, ec, lu, cm), "
        "RefSeqProtein(rs, pracc, prod, pgi, cb, note, enz, len2) "
        "-> refLink(sym, prod, rs, pracc, gname, pname, ez, omim).",
    ),
    # Transcript-to-Entrez links.
    (
        "ktll",
        "ComputedCrossref(kg, rs, pr), "
        "RefSeqGene(rs, sym, ez, syn, dbx, desc, lt, g2) "
        "-> knownToLocusLink(kg, ez).",
    ),
]

_TARGET_TGDS = [
    # (C) every cross-referenced transcript gets an isoform cluster
    # (target tgd: exercises wa-glav beyond gav).
    (
        "isoforms",
        "kgXref(kg, mrna, sp, spdisp, sym, rs, pracc, desc, rfam, trna) "
        "-> knownIsoforms(cluster, kg).",
    ),
]


def _key_egds(relation: str, arity: int, key_positions: list[int], tag: str):
    """One egd per non-key attribute: tuples agreeing on the key agree there."""
    egds = []
    first = [f"a{i}" for i in range(arity)]
    second = [
        f"a{i}" if i in key_positions else f"b{i}" for i in range(arity)
    ]
    for position in range(arity):
        if position in key_positions:
            continue
        text = (
            f"{relation}({', '.join(first)}), {relation}({', '.join(second)}) "
            f"-> a{position} = b{position}."
        )
        egds.append((f"{tag}_{position}", text))
    return egds


_TARGET_EGDS = (
    _key_egds("knownGene", 12, [0], "key_kg")
    + _key_egds("kgXref", 10, [0], "key_xref")
    + _key_egds("refLink", 8, [2], "key_reflink")
    + _key_egds("knownToLocusLink", 2, [0], "key_ktll")
    + [
        # A transcript lives in exactly one cluster.
        (
            "iso_key",
            "knownIsoforms(c1, t), knownIsoforms(c2, t) -> c1 = c2.",
        ),
        # (C) shared Entrez gene id -> same cluster.
        (
            "cluster_entrez",
            "knownToLocusLink(t1, e), knownToLocusLink(t2, e), "
            "knownIsoforms(c1, t1), knownIsoforms(c2, t2) -> c1 = c2.",
        ),
        # (C) shared gene symbol -> same cluster.
        (
            "cluster_symbol",
            "kgXref(t1, m1, s1, d1, sym, r1, p1, ds1, f1, n1), "
            "kgXref(t2, m2, s2, d2, sym, r2, p2, ds2, f2, n2), "
            "knownIsoforms(c1, t1), knownIsoforms(c2, t2) -> c1 = c2.",
        ),
    ]
)


@lru_cache(maxsize=1)
def genome_mapping() -> SchemaMapping:
    """The full ``glav+(wa-glav, egd)`` schema mapping of the benchmark."""
    st_tgds = [parse_dependency(text, label=label) for label, text in _ST_TGDS]
    target_tgds = [
        parse_dependency(text, label=label) for label, text in _TARGET_TGDS
    ]
    target_egds = [
        parse_dependency(text, label=label) for label, text in _TARGET_EGDS
    ]
    return SchemaMapping(
        source_schema(), target_schema(), st_tgds, target_tgds, target_egds
    )
