"""Synthetic data generator for the Genome Browser scenario.

The paper's evaluation uses real UCSC/RefSeq/EntrezGene/UniProt dumps; an
offline environment cannot, so this generator synthesizes instances with the
same relational shape and — crucially — the same *conflict structure*, under
exact control of the two axes the evaluation varies (§5.1):

- **size**: the number of transcripts (each transcript contributes one
  ``ComputedAlignments`` row, one ``ComputedCrossref`` row, five RefSeq rows,
  and one UniProt row; genes contribute shared ``EntrezGene`` rows);
- **suspect rate**: the fraction of transcripts involved in an egd
  violation.  Conflicts are injected in two flavours matching Figure 2:
  (A) the RefSeq exon count disagrees with the UCSC alignment's, and
  (B) the UniProt gene symbol disagrees with the RefSeq/Entrez symbol.

Transcripts are grouped into genes (``isoforms_per_gene`` transcripts share
an Entrez id and a gene symbol), which drives the ``knownIsoforms``
clustering channel (C).  Conflicting values are unique per transcript so
that violations stay local — matching the real data, where spurious symbol
variants are transcript-specific.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.relational.instance import Fact, Instance


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic Genome Browser source generator."""

    transcripts: int = 100
    suspect_fraction: float = 0.03
    isoforms_per_gene: int = 3
    exon_conflict_share: float = 0.5  # remaining conflicts are symbol conflicts
    seed: int = 0


@dataclass
class GeneratedInstance:
    """A generated source instance plus ground-truth bookkeeping."""

    instance: Instance
    config: GeneratorConfig
    transcripts: list[str] = field(default_factory=list)
    conflicted_transcripts: list[str] = field(default_factory=list)
    exon_conflicts: list[str] = field(default_factory=list)
    symbol_conflicts: list[str] = field(default_factory=list)

    def tuples_per_relation(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for fact in self.instance:
            counts[fact.relation] = counts.get(fact.relation, 0) + 1
        return counts


class GenomeDataGenerator:
    """Deterministic (seeded) generator of benchmark source instances."""

    def __init__(self, config: GeneratorConfig):
        self.config = config

    def generate(self) -> GeneratedInstance:
        config = self.config
        rng = random.Random(config.seed)
        instance = Instance()
        result = GeneratedInstance(instance=instance, config=config)

        count = config.transcripts
        conflicted = max(0, min(count, round(count * config.suspect_fraction)))
        conflict_ids = set(rng.sample(range(count), conflicted))
        exon_cut = round(conflicted * config.exon_conflict_share)
        conflict_list = sorted(conflict_ids)
        exon_set = set(conflict_list[:exon_cut])

        genes_seen: set[int] = set()
        for index in range(count):
            gene = index // config.isoforms_per_gene
            kg_id = f"uc{index:06d}"
            refseq = f"NM_{index:06d}"
            protein = f"P{index:05d}"
            entrez = f"GeneID:{gene}"
            symbol = f"SYM{gene}"
            chrom = f"chr{gene % 22 + 1}"
            strand = "+" if index % 2 == 0 else "-"
            tx_start = 1000 * index
            tx_end = tx_start + rng.randint(500, 5000)
            exon_count = rng.randint(1, 30)

            result.transcripts.append(kg_id)
            is_exon_conflict = index in exon_set
            is_symbol_conflict = index in conflict_ids and not is_exon_conflict
            if is_exon_conflict:
                result.exon_conflicts.append(kg_id)
                result.conflicted_transcripts.append(kg_id)
            if is_symbol_conflict:
                result.symbol_conflicts.append(kg_id)
                result.conflicted_transcripts.append(kg_id)

            refseq_exon_count = (
                exon_count + rng.randint(1, 3) if is_exon_conflict else exon_count
            )
            uniprot_symbol = f"ALT{index}" if is_symbol_conflict else symbol

            instance.add(
                Fact(
                    "ComputedAlignments",
                    (
                        kg_id, chrom, strand, tx_start, tx_end,
                        tx_start + 10, tx_end - 10, exon_count,
                        f"exons{index}", f"align{index}",
                    ),
                )
            )
            instance.add(Fact("ComputedCrossref", (kg_id, refseq, protein)))
            instance.add(
                Fact(
                    "RefSeqTranscript",
                    (
                        refseq, 1, 7_000_000 + index, tx_end - tx_start,
                        "mRNA", refseq_exon_count, "2015-06-01", f"rec{index}",
                    ),
                )
            )
            instance.add(
                Fact(
                    "RefSeqSource",
                    (refseq, "Homo sapiens", 9606, chrom, f"{chrom}q{index % 40}", "cDNA"),
                )
            )
            instance.add(
                Fact(
                    "RefSeqReference",
                    (
                        refseq, 20_000_000 + index, f"Author{index % 97}",
                        f"Title {index}", "Genome Res", 2000 + index % 16,
                        9_000_000 + index, "",
                    ),
                )
            )
            instance.add(
                Fact(
                    "RefSeqGene",
                    (
                        refseq, symbol, entrez, f"syn{gene}", f"dbx{gene}",
                        f"{symbol} description", f"loc{gene}", gene,
                    ),
                )
            )
            instance.add(
                Fact(
                    "RefSeqProtein",
                    (
                        refseq, protein, f"{symbol} protein", 8_000_000 + index,
                        refseq, "", f"EC:{index % 6}.{index % 4}", 3 * exon_count,
                    ),
                )
            )
            instance.add(Fact("UniProt", (protein, f"{symbol}_HUMAN", uniprot_symbol)))
            if gene not in genes_seen:
                genes_seen.add(gene)
                # The description matches RefSeq's: the two kgXref channels
                # must only disagree where a conflict is injected.
                instance.add(
                    Fact("EntrezGene", (entrez, symbol, f"{symbol} description"))
                )
        return result
