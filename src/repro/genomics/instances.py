"""Benchmark instance profiles (Table 2), scaled for a pure-Python stack.

The paper's profiles are L0/L3/L9/L20 (large instances with 0/3/9/20 % of
transcripts suspect) and S3/M3/L3/F3 (sizes an order of magnitude apart at
~3 % suspect).  The paper's absolute sizes (3.5k – 1.8M source tuples) are
scaled down by a constant factor because every component here — chase,
grounder, solver — is pure Python; the *ratios* between profiles (10× size
steps, the same suspect rates) are preserved, which is what the evaluation's
trends are about.  EXPERIMENTS.md records the scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.genomics.generator import (
    GeneratedInstance,
    GenomeDataGenerator,
    GeneratorConfig,
)

#: Transcripts in the "large" profile.  The paper's L has ~33k transcripts
#: (322k source tuples at ~9.7 tuples/transcript); ours defaults to 100 —
#: a ~330× scale-down so the pure-Python monolithic baseline stays runnable.
LARGE_TRANSCRIPTS = 100


@dataclass(frozen=True)
class InstanceProfile:
    """A named benchmark profile: size plus suspect-transcript rate."""

    name: str
    transcripts: int
    suspect_fraction: float
    seed: int = 7

    def config(self) -> GeneratorConfig:
        return GeneratorConfig(
            transcripts=self.transcripts,
            suspect_fraction=self.suspect_fraction,
            seed=self.seed,
        )


INSTANCE_PROFILES: dict[str, InstanceProfile] = {
    # Suspect-rate sweep at the large size (Figure 3/4 left plots).
    "L0": InstanceProfile("L0", LARGE_TRANSCRIPTS, 0.00),
    "L3": InstanceProfile("L3", LARGE_TRANSCRIPTS, 0.03),
    "L9": InstanceProfile("L9", LARGE_TRANSCRIPTS, 0.09),
    "L20": InstanceProfile("L20", LARGE_TRANSCRIPTS, 0.20),
    # Size sweep at ~3 % suspect (Figure 3/4 right plots).  The paper steps
    # 10× per size; pure Python forces gentler ~2–3× steps so that the
    # monolithic baseline remains runnable end-to-end.  S3 is sized so it
    # still contains at least one conflicted transcript at 3 %.
    "S3": InstanceProfile("S3", 18, 0.06),
    "M3": InstanceProfile("M3", 40, 0.03),
    # L3 doubles as the third size step.
    "F3": InstanceProfile("F3", 320, 0.029),
}

#: Paper ordering for the two experiment families.
SUSPECT_SWEEP = ("L0", "L3", "L9", "L20")
SIZE_SWEEP = ("S3", "M3", "L3", "F3")


def build_instance(profile: str | InstanceProfile) -> GeneratedInstance:
    """Materialize a profile into a generated source instance."""
    if isinstance(profile, str):
        profile = INSTANCE_PROFILES[profile]
    return GenomeDataGenerator(profile.config()).generate()
