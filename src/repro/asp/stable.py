"""Stable models of ground disjunctive programs.

The engine follows the classic *generate and test* architecture (Janhunen et
al.; also the architecture of claspD), built on the CDCL solver:

- **Generate.**  A SAT encoding whose models overapproximate the stable
  models: every rule becomes a clause, every rule body gets a definition
  variable, and every true atom is required to have an *exclusive* supporting
  rule (a rule whose body holds and in which it is the only true head atom —
  a necessary condition for membership in a minimal model of the reduct).
- **Test.**  A candidate model ``M`` is stable iff it is a minimal model of
  its reduct.  For normal programs this is a linear-time least-model
  computation (Dowling–Gallier); for truly disjunctive programs it is a
  co-NP check, performed with a second, small SAT instance over the atoms
  of ``M``.
- **Refine.**  A failed candidate yields an unfounded set ``U``; the engine
  adds the (conjunctive) loop formulas of ``U`` (Lin–Zhao / ASSAT for normal
  programs, Lee's model-theoretic generalization for disjunctive ones),
  which are valid in every stable model and exclude the candidate.

Head-cycle-free disjunctive programs are *shifted* into equivalent normal
programs first (Ben-Eliyahu & Dechter), enabling the fast minimality test.

Hot-path notes: atoms that appear in no rule head are false in every stable
model (the generator forces them false up front), so candidate extraction
and the enumeration-blocking clauses of :meth:`StableModelEngine._exclude`
range over the *head atoms* only — on the XR programs most atoms are
body-only "remains" copies of safe context facts, and the full-universe
clauses dominated solve time.  The ``heads_of`` index built during
generation is reused to visit only the relevant rules in the loop-formula
steps, and SCCs come from the in-repo iterative Tarjan
(:mod:`repro.asp.graphs`) rather than ``networkx``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.asp.graphs import nontrivial_sccs, tarjan_scc
from repro.asp.sat import SatSolver
from repro.asp.syntax import GroundProgram, GroundRule


def _positive_adjacency(rules: Iterable[GroundRule]) -> dict[int, list[int]]:
    """head atom -> positive body atoms, over all rules (dependency graph)."""
    adjacency: dict[int, list[int]] = {}
    for rule in rules:
        for head_atom in rule.head:
            edges = adjacency.setdefault(head_atom, [])
            for body_atom in rule.body_pos:
                edges.append(body_atom)
    return adjacency


def is_head_cycle_free(rules: Iterable[GroundRule]) -> bool:
    """True if no two atoms in one disjunctive head share a positive cycle."""
    rules = list(rules)
    component_of: dict[int, int] = {}
    for index, component in enumerate(tarjan_scc(_positive_adjacency(rules))):
        for node in component:
            component_of[node] = index
    for rule in rules:
        if len(rule.head) < 2:
            continue
        components = [component_of[a] for a in rule.head]
        if len(set(components)) < len(components):
            return False
    return True


def shift_disjunctions(rules: Iterable[GroundRule]) -> list[GroundRule]:
    """Shift ``a1 ∨ ... ∨ an ← B`` into ``ai ← B, ¬a1, ..., ¬an (j≠i)``.

    Sound and complete for head-cycle-free programs.
    """
    shifted: list[GroundRule] = []
    for rule in rules:
        if len(rule.head) < 2:
            shifted.append(rule)
            continue
        for position, head_atom in enumerate(rule.head):
            others = rule.head[:position] + rule.head[position + 1:]
            shifted.append(
                GroundRule(
                    head=(head_atom,),
                    body_pos=rule.body_pos,
                    body_neg=rule.body_neg + others,
                )
            )
    return shifted


class StableModelEngine:
    """Enumerates the stable models of a ground disjunctive program.

    Usage::

        engine = StableModelEngine(program)
        for model in engine.stable_models():      # sets of atom ids
            ...

    The engine is incremental: :meth:`add_atom_clause` installs additional
    clauses over atom ids between calls (used by cautious reasoning), and
    :meth:`next_stable_model` resumes enumeration.
    """

    def __init__(
        self,
        program: GroundProgram,
        auto_shift: bool = True,
        deadline=None,
    ):
        # ``deadline`` is a :class:`repro.runtime.budget.Deadline` (or any
        # object with a ``check()`` raising to abort); it is installed as
        # the cooperative interrupt of every SAT search this engine runs.
        self.deadline = deadline
        self.program = program
        rules = list(program.rules)
        self.was_shifted = False
        if any(r.is_disjunctive() for r in rules):
            if auto_shift and is_head_cycle_free(rules):
                rules = shift_disjunctions(rules)
                self.was_shifted = True
        self.rules = rules
        self.is_normal = all(len(r.head) <= 1 for r in self.rules)
        self.num_atoms = program.num_atoms
        self._exhausted = False
        self._candidates_tested = 0
        self._models_found = 0
        self._loop_formulas = 0
        self._build_generator()
        self._add_upfront_loop_formulas()

    # ---------------------------------------------------------- generation

    def _build_generator(self) -> None:
        solver = SatSolver(self.num_atoms)
        if self.deadline is not None:
            solver.interrupt_check = self.deadline.check
        self.solver = solver
        self.true_var = solver.new_var()
        solver.add_clause([self.true_var])

        # Body definition variables, one per rule: beta <-> conj(body).
        self.body_var: list[int] = []
        for rule in self.rules:
            if not rule.body_pos and not rule.body_neg:
                self.body_var.append(self.true_var)
                continue
            beta = solver.new_var()
            self.body_var.append(beta)
            reverse_clause = [beta]
            for atom in rule.body_pos:
                solver.add_clause([-beta, atom])
                reverse_clause.append(-atom)
            for atom in rule.body_neg:
                solver.add_clause([-beta, -atom])
                reverse_clause.append(atom)
            solver.add_clause(reverse_clause)

        # Rule clauses: body -> head disjunction.  ``heads_of`` is kept:
        # the loop-formula steps use it to visit only the rules whose head
        # meets a given atom set.
        heads_of: dict[int, list[int]] = {}
        self.heads_of = heads_of
        for index, rule in enumerate(self.rules):
            beta = self.body_var[index]
            solver.add_clause([-beta] + list(rule.head))
            for atom in rule.head:
                heads_of.setdefault(atom, []).append(index)

        # Every stable model is a subset of the head atoms: the generator
        # forces all other atoms false, and candidate extraction/blocking
        # ranges over this list only.
        self.head_atoms: list[int] = sorted(heads_of)

        # Exclusive-support clauses: a true atom needs a rule whose body
        # holds and in which it is the only true head atom.
        self._exclusive_var_cache: dict[tuple[int, int], int] = {}
        for atom in range(1, self.num_atoms + 1):
            rule_indexes = heads_of.get(atom)
            if not rule_indexes:
                solver.add_clause([-atom])
                continue
            support_literals: list[int] = []
            trivially_supported = False
            for index in rule_indexes:
                rule = self.rules[index]
                if len(rule.head) == 1:
                    if self.body_var[index] == self.true_var:
                        trivially_supported = True
                        break
                    support_literals.append(self.body_var[index])
                else:
                    support_literals.append(self._exclusive_support_var(index, atom))
            if not trivially_supported:
                solver.add_clause([-atom] + support_literals)

        # Bias the first candidates toward small models.
        for var in range(1, solver.num_vars + 1):
            solver.set_default_phase(var, False)

    def _exclusive_support_var(self, rule_index: int, atom: int) -> int:
        """An aux var implying: body of rule holds and no *other* head atom is true."""
        key = (rule_index, atom)
        cached = self._exclusive_var_cache.get(key)
        if cached is not None:
            return cached
        sigma = self.solver.new_var()
        self.solver.add_clause([-sigma, self.body_var[rule_index]])
        for other in self.rules[rule_index].head:
            if other != atom:
                self.solver.add_clause([-sigma, -other])
        self._exclusive_var_cache[key] = sigma
        return sigma

    # ------------------------------------------------------------- testing

    def _least_model_of_reduct(self, model: frozenset[int]) -> set[int]:
        """Least model of the reduct w.r.t. ``model`` (normal programs only).

        Because ``model`` satisfies the program, the least model is a subset
        of ``model``.
        """
        remaining: dict[int, int] = {}
        watchers: dict[int, list[int]] = {}
        derived: set[int] = set()
        queue: list[int] = []
        for index, rule in enumerate(self.rules):
            if not rule.head:
                continue
            if any(atom in model for atom in rule.body_neg):
                continue  # rule removed by the reduct
            unique_body = set(rule.body_pos)
            if not unique_body:
                queue.append(index)
            else:
                remaining[index] = len(unique_body)
                for atom in unique_body:
                    watchers.setdefault(atom, []).append(index)

        while queue:
            index = queue.pop()
            head_atom = self.rules[index].head[0]
            if head_atom in derived:
                continue
            derived.add(head_atom)
            for watching in watchers.get(head_atom, ()):
                remaining[watching] -= 1
                if remaining[watching] == 0:
                    queue.append(watching)
        return derived

    def _minimality_witness(self, model: frozenset[int]) -> frozenset[int] | None:
        """For disjunctive programs: a model of the reduct strictly inside
        ``model``, or None if ``model`` is minimal (hence stable)."""
        atom_list = sorted(model)
        local_of = {atom: index + 1 for index, atom in enumerate(atom_list)}
        checker = SatSolver(len(atom_list))
        if self.deadline is not None:
            checker.interrupt_check = self.deadline.check
        for rule in self.rules:
            if not rule.head and not rule.body_pos:
                continue
            if any(atom in model for atom in rule.body_neg):
                continue
            if any(atom not in model for atom in rule.body_pos):
                continue  # some body atom is false in every subset of model
            clause = [-local_of[atom] for atom in rule.body_pos]
            clause.extend(local_of[atom] for atom in rule.head if atom in model)
            checker.add_clause(clause)
        checker.add_clause([-local_of[atom] for atom in atom_list])
        if not checker.solve():
            return None
        values = checker.model()
        return frozenset(atom for atom in atom_list if values[local_of[atom]])

    # ------------------------------------------------------------ refining

    def _add_upfront_loop_formulas(self) -> None:
        """Install loop formulas for every SCC of the positive dependency
        graph before search starts.

        Cyclically-supporting atom groups (e.g. a symmetric pair derived
        from each other) otherwise survive the generator and have to be
        eliminated one failed candidate at a time.  Inner loops strictly
        inside an SCC are still handled on demand by the refinement step.
        """
        for component in nontrivial_sccs(_positive_adjacency(self.rules)):
            self._add_loop_clauses(frozenset(component))

    def _refine_with_unfounded(self, unfounded: frozenset[int]) -> None:
        """Add loop formulas for each SCC of the unfounded set (decomposing
        yields several stronger formulas instead of one weak one)."""
        adjacency: dict[int, list[int]] = {atom: [] for atom in unfounded}
        for index in self._rules_meeting(unfounded):
            rule = self.rules[index]
            for head_atom in rule.head:
                if head_atom not in unfounded:
                    continue
                edges = adjacency[head_atom]
                for body_atom in rule.body_pos:
                    if body_atom in unfounded:
                        edges.append(body_atom)
        for component in tarjan_scc(adjacency):
            self._add_loop_clauses(frozenset(component))

    def _rules_meeting(self, atoms: frozenset[int]) -> list[int]:
        """Sorted indexes of the rules whose head meets ``atoms``."""
        heads_of = self.heads_of
        indexes: set[int] = set()
        for atom in atoms:
            indexes.update(heads_of.get(atom, ()))
        return sorted(indexes)

    def _add_loop_clauses(self, unfounded: frozenset[int]) -> None:
        """Add the loop formulas of the unfounded set (valid in all stable
        models; exclude the current candidate)."""
        external_literals: list[int] = []
        for index in self._rules_meeting(unfounded):
            rule = self.rules[index]
            if any(atom in unfounded for atom in rule.body_pos):
                continue
            outside_head = [atom for atom in rule.head if atom not in unfounded]
            if not outside_head:
                external_literals.append(self.body_var[index])
            else:
                tau = self.solver.new_var()
                self.solver.add_clause([-tau, self.body_var[index]])
                for atom in outside_head:
                    self.solver.add_clause([-tau, -atom])
                external_literals.append(tau)
        for atom in unfounded:
            self.solver.add_clause([-atom] + external_literals)
        self._loop_formulas += 1

    # ----------------------------------------------------------- interface

    def add_atom_clause(self, literals: Sequence[int]) -> None:
        """Install a clause over atom ids (positive/negative integers).

        Used by cautious/brave reasoning to steer enumeration.  The clause
        must only mention atom ids (not solver-internal variables).
        """
        for literal in literals:
            if abs(literal) > self.num_atoms:
                raise ValueError(f"literal {literal} is not an atom id")
        if not self.solver.add_clause(list(literals)):
            self._exhausted = True

    def next_stable_model(self) -> frozenset[int] | None:
        """The next stable model (a frozenset of atom ids), or None."""
        if self._exhausted:
            return None
        while True:
            if self.deadline is not None:
                self.deadline.check()
            if not self.solver.solve():
                self._exhausted = True
                return None
            values = self.solver.model()
            # Headless atoms are forced false by the generator, so the
            # candidate is determined by the head atoms alone.
            candidate = frozenset(
                atom for atom in self.head_atoms if values[atom]
            )
            self._candidates_tested += 1
            if self.is_normal:
                least = self._least_model_of_reduct(candidate)
                if least == candidate:
                    self._exclude(candidate)
                    self._models_found += 1
                    return candidate
                self._refine_with_unfounded(frozenset(candidate - least))
            else:
                witness = self._minimality_witness(candidate)
                if witness is None:
                    self._exclude(candidate)
                    self._models_found += 1
                    return candidate
                self._refine_with_unfounded(frozenset(candidate - witness))

    def _exclude(self, model: frozenset[int]) -> None:
        """Exclude exactly this atom assignment (for enumeration).

        The blocking clause ranges over the head atoms only: every stable
        model agrees on the remaining (forced-false) atoms, so a clause
        over the full atom range would block exactly the same assignments
        while being as wide as the atom table.
        """
        clause = [
            -atom if atom in model else atom for atom in self.head_atoms
        ]
        if not self.solver.add_clause(clause):
            self._exhausted = True

    @property
    def statistics(self) -> dict[str, int]:
        """Search statistics: the SAT solver's counters plus the
        generate-and-test loop's own (candidates tested against
        minimality, stable models found, loop formulas installed)."""
        stats = dict(self.solver.statistics)
        stats["candidates_tested"] = self._candidates_tested
        stats["stable_models_found"] = self._models_found
        stats["loop_formulas"] = self._loop_formulas
        return stats

    def stable_models(self, limit: int | None = None) -> Iterator[frozenset[int]]:
        """Yield stable models until exhaustion (or ``limit`` models)."""
        produced = 0
        while limit is None or produced < limit:
            model = self.next_stable_model()
            if model is None:
                return
            produced += 1
            yield model
