"""Stable models of ground disjunctive programs.

The engine follows the classic *generate and test* architecture (Janhunen et
al.; also the architecture of claspD), built on the CDCL solver:

- **Generate.**  A SAT encoding whose models overapproximate the stable
  models: every rule becomes a clause, every rule body gets a definition
  variable, and every true atom is required to have an *exclusive* supporting
  rule (a rule whose body holds and in which it is the only true head atom —
  a necessary condition for membership in a minimal model of the reduct).
- **Test.**  A candidate model ``M`` is stable iff it is a minimal model of
  its reduct.  For normal programs this is a linear-time least-model
  computation (Dowling–Gallier); for truly disjunctive programs it is a
  co-NP check, performed with a second, small SAT instance over the atoms
  of ``M``.
- **Refine.**  A failed candidate yields an unfounded set ``U``; the engine
  adds the (conjunctive) loop formulas of ``U`` (Lin–Zhao / ASSAT for normal
  programs, Lee's model-theoretic generalization for disjunctive ones),
  which are valid in every stable model and exclude the candidate.

Head-cycle-free disjunctive programs are *shifted* into equivalent normal
programs first (Ben-Eliyahu & Dechter), enabling the fast minimality test.

Hot-path notes: atoms that appear in no rule head are false in every stable
model (the generator forces them false up front), so candidate extraction
and the enumeration-blocking clauses of :meth:`StableModelEngine._exclude`
range over the *head atoms* only — on the XR programs most atoms are
body-only "remains" copies of safe context facts, and the full-universe
clauses dominated solve time.  The ``heads_of`` index built during
generation is reused to visit only the relevant rules in the loop-formula
steps, and SCCs come from the in-repo iterative Tarjan
(:mod:`repro.asp.graphs`) rather than ``networkx``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.asp.graphs import nontrivial_sccs, tarjan_scc
from repro.asp.sat import SatSolver
from repro.asp.syntax import GroundProgram, GroundRule


def _positive_adjacency(rules: Iterable[GroundRule]) -> dict[int, list[int]]:
    """head atom -> positive body atoms, over all rules (dependency graph)."""
    adjacency: dict[int, list[int]] = {}
    for rule in rules:
        for head_atom in rule.head:
            edges = adjacency.setdefault(head_atom, [])
            for body_atom in rule.body_pos:
                edges.append(body_atom)
    return adjacency


def is_head_cycle_free(rules: Iterable[GroundRule]) -> bool:
    """True if no two atoms in one disjunctive head share a positive cycle."""
    rules = list(rules)
    component_of: dict[int, int] = {}
    for index, component in enumerate(tarjan_scc(_positive_adjacency(rules))):
        for node in component:
            component_of[node] = index
    for rule in rules:
        if len(rule.head) < 2:
            continue
        components = [component_of[a] for a in rule.head]
        if len(set(components)) < len(components):
            return False
    return True


def shift_disjunctions(rules: Iterable[GroundRule]) -> list[GroundRule]:
    """Shift ``a1 ∨ ... ∨ an ← B`` into ``ai ← B, ¬a1, ..., ¬an (j≠i)``.

    Sound and complete for head-cycle-free programs.
    """
    shifted: list[GroundRule] = []
    for rule in rules:
        if len(rule.head) < 2:
            shifted.append(rule)
            continue
        for position, head_atom in enumerate(rule.head):
            others = rule.head[:position] + rule.head[position + 1:]
            shifted.append(
                GroundRule(
                    head=(head_atom,),
                    body_pos=rule.body_pos,
                    body_neg=rule.body_neg + others,
                )
            )
    return shifted


class StableModelEngine:
    """Enumerates the stable models of a ground disjunctive program.

    Usage::

        engine = StableModelEngine(program)
        for model in engine.stable_models():      # sets of atom ids
            ...

    The engine is incremental: :meth:`add_atom_clause` installs additional
    clauses over atom ids between calls (used by cautious reasoning), and
    :meth:`next_stable_model` resumes enumeration.
    """

    def __init__(
        self,
        program: GroundProgram,
        auto_shift: bool = True,
        deadline=None,
        compact: bool = False,
    ):
        # ``deadline`` is a :class:`repro.runtime.budget.Deadline` (or any
        # object with a ``check()`` raising to abort); it is installed as
        # the cooperative interrupt of every SAT search this engine runs.
        self.deadline = deadline
        self.program = program
        rules = list(program.rules)
        self.was_shifted = False
        if any(r.is_disjunctive() for r in rules):
            if auto_shift and is_head_cycle_free(rules):
                rules = shift_disjunctions(rules)
                self.was_shifted = True
        self.rules = rules
        self.is_normal = all(len(r.head) <= 1 for r in self.rules)
        self.num_atoms = program.num_atoms
        self.compact = compact
        self._exhausted = False
        self._candidates_tested = 0
        self._models_found = 0
        self._loop_formulas = 0
        #: Precomputed reduct-derivation scaffold (compact engines only);
        #: built lazily on the first minimality check.
        self._reduct_scaffold = None
        #: Failed-assumption core of the last :meth:`solve_under` that
        #: returned None (mirrors ``SatSolver.failed_assumptions``).
        self.failed_assumptions: list[int] | None = None
        if compact:
            self._build_generator_compact()
        else:
            self._build_generator()
        self._add_upfront_loop_formulas()
        # Everything added past this point (loop refinements, CDCL learned
        # clauses, guarded steering clauses) is knowledge *carried* across
        # solves rather than part of the program encoding.
        self._base_clauses = len(self.solver.clauses)

    # ---------------------------------------------------------- generation

    def _build_generator(self) -> None:
        solver = SatSolver(self.num_atoms)
        if self.deadline is not None:
            solver.interrupt_check = self.deadline.check
        self.solver = solver
        self.true_var = solver.new_var()
        solver.add_clause([self.true_var])

        # Body definition variables, one per rule: beta <-> conj(body).
        self.body_var: list[int] = []
        for rule in self.rules:
            if not rule.body_pos and not rule.body_neg:
                self.body_var.append(self.true_var)
                continue
            beta = solver.new_var()
            self.body_var.append(beta)
            reverse_clause = [beta]
            for atom in rule.body_pos:
                solver.add_clause([-beta, atom])
                reverse_clause.append(-atom)
            for atom in rule.body_neg:
                solver.add_clause([-beta, -atom])
                reverse_clause.append(atom)
            solver.add_clause(reverse_clause)

        # Rule clauses: body -> head disjunction.  ``heads_of`` is kept:
        # the loop-formula steps use it to visit only the rules whose head
        # meets a given atom set.
        heads_of: dict[int, list[int]] = {}
        self.heads_of = heads_of
        for index, rule in enumerate(self.rules):
            beta = self.body_var[index]
            solver.add_clause([-beta] + list(rule.head))
            for atom in rule.head:
                heads_of.setdefault(atom, []).append(index)

        # Every stable model is a subset of the head atoms: the generator
        # forces all other atoms false, and candidate extraction/blocking
        # ranges over this list only.
        self.head_atoms: list[int] = sorted(heads_of)

        # Exclusive-support clauses: a true atom needs a rule whose body
        # holds and in which it is the only true head atom.
        self._exclusive_var_cache: dict[tuple[int, int], int] = {}
        for atom in range(1, self.num_atoms + 1):
            rule_indexes = heads_of.get(atom)
            if not rule_indexes:
                solver.add_clause([-atom])
                continue
            support_literals: list[int] = []
            trivially_supported = False
            for index in rule_indexes:
                rule = self.rules[index]
                if len(rule.head) == 1:
                    if self.body_var[index] == self.true_var:
                        trivially_supported = True
                        break
                    support_literals.append(self.body_var[index])
                else:
                    support_literals.append(self._exclusive_support_var(index, atom))
            if not trivially_supported:
                solver.add_clause([-atom] + support_literals)

        # Bias the first candidates toward small models.
        for var in range(1, solver.num_vars + 1):
            solver.set_default_phase(var, False)

    def _build_generator_compact(self) -> None:
        """A leaner generator for engines reused across many solves (the
        incremental family path).

        Same stable models as :meth:`_build_generator`; the encoding is
        smaller in three ways, each an equivalence-preserving rewrite:

        - **Duplicate rules are dropped.**  Grounding the same cluster
          through overlapping query supports emits repeated rules; a rule
          set is idempotent, so only the first copy is kept (``self.rules``
          is replaced, keeping the reduct and loop-formula machinery
          consistent with the encoding).
        - **Single-literal bodies use the literal itself.**  A definition
          variable constrained ``beta ↔ l`` is ``l``; on the XR programs
          half the rules have one-literal bodies, so this removes both the
          variable and its two defining clauses.
        - **Identical bodies share one definition variable.**  Bodies are
          hash-consed, so rules differing only in their head reuse the
          same ``beta`` instead of re-encoding the conjunction.

        The variable universe shrinks severalfold, which cuts both clause
        construction and — because every CDCL model must assign every
        variable — the per-solve propagation bill that dominates family
        solving.
        """
        deduped: list[GroundRule] = []
        seen_rules: set[tuple] = set()
        for rule in self.rules:
            key = (rule.head, rule.body_pos, rule.body_neg)
            if key not in seen_rules:
                seen_rules.add(key)
                deduped.append(rule)
        self.rules = deduped

        solver = SatSolver(self.num_atoms)
        if self.deadline is not None:
            solver.interrupt_check = self.deadline.check
        self.solver = solver
        self.true_var = solver.new_var()
        solver.add_clause([self.true_var])

        # Clauses stream through one :meth:`SatSolver.add_clauses_raw`
        # call at the end — per-clause simplification and backtrack
        # bookkeeping dominated build time at this clause volume.  The raw
        # loader's contract (no duplicate/tautological literals, no
        # mention of pre-assigned variables — here only ``true_var``) is
        # discharged clause-kind by clause-kind below.
        pending: list[list[int]] = []
        true_var = self.true_var

        # Body definition literals (not necessarily fresh variables).
        body_cache: dict[tuple, int] = {}
        self.body_var = []
        for rule in self.rules:
            if not rule.body_pos and not rule.body_neg:
                self.body_var.append(true_var)
                continue
            if len(rule.body_pos) + len(rule.body_neg) == 1:
                self.body_var.append(
                    rule.body_pos[0] if rule.body_pos else -rule.body_neg[0]
                )
                continue
            body_key = (rule.body_pos, rule.body_neg)
            beta = body_cache.get(body_key)
            if beta is None:
                beta = solver.new_var()
                body_cache[body_key] = beta
                # Repeated atoms would duplicate literals in the reverse
                # clause; a pos/neg overlap makes the body unsatisfiable.
                body_pos = tuple(dict.fromkeys(rule.body_pos))
                body_neg = tuple(dict.fromkeys(rule.body_neg))
                if set(body_pos) & set(body_neg):
                    pending.append([-beta])
                    self.body_var.append(beta)
                    continue
                reverse_clause = [beta]
                for atom in body_pos:
                    pending.append([-beta, atom])
                    reverse_clause.append(-atom)
                for atom in body_neg:
                    pending.append([-beta, -atom])
                    reverse_clause.append(atom)
                pending.append(reverse_clause)
            self.body_var.append(beta)

        heads_of: dict[int, list[int]] = {}
        self.heads_of = heads_of
        for index, rule in enumerate(self.rules):
            body_lit = self.body_var[index]
            head = rule.head
            for atom in head:
                heads_of.setdefault(atom, []).append(index)
            if body_lit == true_var:
                # Satisfied body: the clause is the head disjunction.
                clause = list(dict.fromkeys(head))
            elif len(head) == 1 and abs(body_lit) <= self.num_atoms:
                # Atom-literal body meeting its own head: ``h :- h`` is a
                # tautological clause, ``h :- not h`` collapses to ``h``.
                if body_lit == head[0]:
                    continue
                clause = (
                    [head[0]]
                    if body_lit == -head[0]
                    else [-body_lit, head[0]]
                )
            elif len(head) <= 1:
                clause = [-body_lit] + list(head)
            else:
                heads_unique = list(dict.fromkeys(head))
                if body_lit in heads_unique:
                    continue  # tautology: the head contains the body atom
                clause = [-body_lit] + [
                    atom for atom in heads_unique if atom != -body_lit
                ]
            pending.append(clause)
        self.head_atoms = sorted(heads_of)

        self._exclusive_var_cache = {}
        for atom in range(1, self.num_atoms + 1):
            rule_indexes = heads_of.get(atom)
            if not rule_indexes:
                pending.append([-atom])
                continue
            support_literals: list[int] = []
            trivially_supported = False
            for index in rule_indexes:
                rule = self.rules[index]
                if len(rule.head) == 1:
                    if self.body_var[index] == true_var:
                        trivially_supported = True
                        break
                    support_literals.append(self.body_var[index])
                else:
                    support_literals.append(
                        self._exclusive_support_var(index, atom, pending)
                    )
            if trivially_supported or atom in support_literals:
                # ``a :- a`` makes the support clause tautological.
                continue
            clause = [-atom]
            clause.extend(
                lit for lit in support_literals if lit != -atom
            )
            pending.append(clause)

        solver.add_clauses_raw(pending)
        for var in range(1, solver.num_vars + 1):
            solver.set_default_phase(var, False)

    def _exclusive_support_var(
        self, rule_index: int, atom: int, pending: list[list[int]] | None = None
    ) -> int:
        """An aux var implying: body of rule holds and no *other* head atom is true.

        With ``pending`` (the compact builder's bulk-clause buffer) the
        defining clauses are deferred to the batched load instead of being
        installed immediately.
        """
        key = (rule_index, atom)
        cached = self._exclusive_var_cache.get(key)
        if cached is not None:
            return cached
        sigma = self.solver.new_var()
        emit = pending.append if pending is not None else self.solver.add_clause
        if self.body_var[rule_index] != self.true_var:
            emit([-sigma, self.body_var[rule_index]])
        for other in dict.fromkeys(self.rules[rule_index].head):
            if other != atom:
                emit([-sigma, -other])
        self._exclusive_var_cache[key] = sigma
        return sigma

    # ------------------------------------------------------------- testing

    def _least_model_of_reduct(self, model: frozenset[int]) -> set[int]:
        """Least model of the reduct w.r.t. ``model`` (normal programs only).

        Because ``model`` satisfies the program, the least model is a subset
        of ``model``.  Compact engines run a scaffolded variant: the
        per-rule counters, watcher lists, and the closure under the
        negation-free rules — all model-independent — are computed once and
        each check only replays the (few) negative-body rules the reduct
        keeps, instead of rebuilding the whole derivation state per model.
        """
        if self.compact:
            return self._least_model_scaffolded(model)
        remaining: dict[int, int] = {}
        watchers: dict[int, list[int]] = {}
        derived: set[int] = set()
        queue: list[int] = []
        for index, rule in enumerate(self.rules):
            if not rule.head:
                continue
            if any(atom in model for atom in rule.body_neg):
                continue  # rule removed by the reduct
            unique_body = set(rule.body_pos)
            if not unique_body:
                queue.append(index)
            else:
                remaining[index] = len(unique_body)
                for atom in unique_body:
                    watchers.setdefault(atom, []).append(index)

        while queue:
            index = queue.pop()
            head_atom = self.rules[index].head[0]
            if head_atom in derived:
                continue
            derived.add(head_atom)
            for watching in watchers.get(head_atom, ()):
                remaining[watching] -= 1
                if remaining[watching] == 0:
                    queue.append(watching)
        return derived

    def _build_reduct_scaffold(self) -> None:
        """One-time derivation state for :meth:`_least_model_scaffolded`.

        Rules without negative body survive *every* reduct, so their
        closure (and the counter state it leaves behind) is shared by all
        checks; only rules with a negative body vary with the model.
        """
        rules = self.rules
        count = len(rules)
        heads = [rule.head[0] if rule.head else 0 for rule in rules]
        counters = [0] * count
        watchers: dict[int, list[int]] = {}
        neg_rules: list[int] = []
        queue: list[int] = []
        for index, rule in enumerate(rules):
            if rule.body_neg:
                neg_rules.append(index)
            unique_body = set(rule.body_pos)
            counters[index] = len(unique_body)
            for atom in unique_body:
                watchers.setdefault(atom, []).append(index)
            if not unique_body and not rule.body_neg and heads[index]:
                queue.append(index)
        derived: set[int] = set()
        while queue:
            index = queue.pop()
            head_atom = heads[index]
            if head_atom in derived:
                continue
            derived.add(head_atom)
            for watching in watchers.get(head_atom, ()):
                counters[watching] -= 1
                if (
                    counters[watching] == 0
                    and heads[watching]
                    and not rules[watching].body_neg
                ):
                    queue.append(watching)
        self._reduct_scaffold = (heads, counters, watchers, neg_rules, derived)

    def _least_model_scaffolded(self, model: frozenset[int]) -> set[int]:
        if self._reduct_scaffold is None:
            self._build_reduct_scaffold()
        heads, base_counters, watchers, neg_rules, base_derived = (
            self._reduct_scaffold
        )
        rules = self.rules
        # Rules the reduct removes: a negative body literal is in the model.
        blocked: set[int] = set()
        for index in neg_rules:
            if any(atom in model for atom in rules[index].body_neg):
                blocked.add(index)
        derived = set(base_derived)
        counters = base_counters.copy()
        # Resume the closure with the surviving negative-body rules enabled.
        queue = [
            index
            for index in neg_rules
            if index not in blocked and counters[index] == 0 and heads[index]
        ]
        while queue:
            index = queue.pop()
            head_atom = heads[index]
            if head_atom in derived:
                continue
            derived.add(head_atom)
            for watching in watchers.get(head_atom, ()):
                counters[watching] -= 1
                if (
                    counters[watching] == 0
                    and heads[watching]
                    and watching not in blocked
                ):
                    queue.append(watching)
        return derived

    def _minimality_witness(self, model: frozenset[int]) -> frozenset[int] | None:
        """For disjunctive programs: a model of the reduct strictly inside
        ``model``, or None if ``model`` is minimal (hence stable)."""
        atom_list = sorted(model)
        local_of = {atom: index + 1 for index, atom in enumerate(atom_list)}
        checker = SatSolver(len(atom_list))
        if self.deadline is not None:
            checker.interrupt_check = self.deadline.check
        for rule in self.rules:
            if not rule.head and not rule.body_pos:
                continue
            if any(atom in model for atom in rule.body_neg):
                continue
            if any(atom not in model for atom in rule.body_pos):
                continue  # some body atom is false in every subset of model
            clause = [-local_of[atom] for atom in rule.body_pos]
            clause.extend(local_of[atom] for atom in rule.head if atom in model)
            checker.add_clause(clause)
        checker.add_clause([-local_of[atom] for atom in atom_list])
        if not checker.solve():
            return None
        values = checker.model()
        return frozenset(atom for atom in atom_list if values[local_of[atom]])

    # ------------------------------------------------------------ refining

    def _add_upfront_loop_formulas(self) -> None:
        """Install loop formulas for every SCC of the positive dependency
        graph before search starts.

        Cyclically-supporting atom groups (e.g. a symmetric pair derived
        from each other) otherwise survive the generator and have to be
        eliminated one failed candidate at a time.  Inner loops strictly
        inside an SCC are still handled on demand by the refinement step.
        """
        for component in nontrivial_sccs(_positive_adjacency(self.rules)):
            self._add_loop_clauses(frozenset(component))

    def _refine_with_unfounded(self, unfounded: frozenset[int]) -> None:
        """Add loop formulas for each SCC of the unfounded set (decomposing
        yields several stronger formulas instead of one weak one)."""
        adjacency: dict[int, list[int]] = {atom: [] for atom in unfounded}
        for index in self._rules_meeting(unfounded):
            rule = self.rules[index]
            for head_atom in rule.head:
                if head_atom not in unfounded:
                    continue
                edges = adjacency[head_atom]
                for body_atom in rule.body_pos:
                    if body_atom in unfounded:
                        edges.append(body_atom)
        for component in tarjan_scc(adjacency):
            self._add_loop_clauses(frozenset(component))

    def _rules_meeting(self, atoms: frozenset[int]) -> list[int]:
        """Sorted indexes of the rules whose head meets ``atoms``."""
        heads_of = self.heads_of
        indexes: set[int] = set()
        for atom in atoms:
            indexes.update(heads_of.get(atom, ()))
        return sorted(indexes)

    def _add_loop_clauses(self, unfounded: frozenset[int]) -> None:
        """Add the loop formulas of the unfounded set (valid in all stable
        models; exclude the current candidate)."""
        external_literals: list[int] = []
        pending: list[list[int]] = []
        for index in self._rules_meeting(unfounded):
            rule = self.rules[index]
            if any(atom in unfounded for atom in rule.body_pos):
                continue
            outside_head = [atom for atom in rule.head if atom not in unfounded]
            if not outside_head:
                external_literals.append(self.body_var[index])
            else:
                tau = self.solver.new_var()
                pending.append([-tau, self.body_var[index]])
                for atom in outside_head:
                    pending.append([-tau, -atom])
                external_literals.append(tau)
        for atom in unfounded:
            pending.append([-atom] + external_literals)
        self.solver.add_clauses(pending)
        self._loop_formulas += 1

    # ----------------------------------------------------------- interface

    def add_atom_clause(self, literals: Sequence[int]) -> None:
        """Install a clause over atom ids (positive/negative integers).

        Used by cautious/brave reasoning to steer enumeration.  The clause
        must only mention atom ids (not solver-internal variables).
        """
        for literal in literals:
            if abs(literal) > self.num_atoms:
                raise ValueError(f"literal {literal} is not an atom id")
        if not self.solver.add_clause(list(literals)):
            self._exhausted = True

    # ------------------------------------------- incremental (family) API

    def new_selector(self) -> int:
        """A fresh *selector literal*: a raw solver variable outside the
        atom universe, used to guard steering clauses.

        Selectors must live outside the atom range — a program-level
        guard atom would be forced false by the generator's headless-atom
        clauses before it could select anything.  Activate a selector by
        passing it as an assumption to :meth:`solve_under`; permanently
        switch its clauses off with :meth:`retire_selector`.
        """
        return self.solver.new_var()

    def add_guarded_clause(self, selector: int, literals: Sequence[int]) -> None:
        """Install ``selector → (l₁ ∨ … ∨ lₙ)`` over atom ids.

        The clause is inert unless ``selector`` is assumed true, so
        per-candidate steering constraints (which are *not* valid in all
        stable models) can share one solver without poisoning each other.
        """
        for literal in literals:
            if abs(literal) > self.num_atoms:
                raise ValueError(f"literal {literal} is not an atom id")
        if not self.solver.add_clause([-selector] + list(literals)):
            self._exhausted = True

    def retire_selector(self, selector: int) -> None:
        """Permanently disable every clause guarded by ``selector``.

        The unit clause ``¬selector`` satisfies all its guarded clauses
        at the top level; the solver never branches on them again.
        """
        if not self.solver.add_clause([-selector]):
            self._exhausted = True

    def entailed_value(self, atom: int) -> int:
        """1/0 when top-level propagation of the clause database alone
        forces the atom, -1 otherwise.

        Sound for every stable model: the database's models
        overapproximate the stable models, and guarded clauses cannot
        force atoms while their selector is undecided or retired.  Only
        meaningful on engines driven through :meth:`solve_under` — the
        enumeration path's :meth:`_exclude` blocking clauses are *not*
        valid in all stable models and would break this guarantee.
        """
        return self.solver.top_level_value(atom)

    def solve_under(self, assumptions: Sequence[int] = ()) -> frozenset[int] | None:
        """One stable model consistent with ``assumptions``, or None.

        Unlike :meth:`next_stable_model` the found model is **not**
        excluded: blocking clauses are enumeration bookkeeping, unsound
        to share across different candidate questions, while everything
        this search *learns* — loop formulas and CDCL learned clauses,
        both valid in every stable model — persists for later calls.
        Callers drive enumeration themselves via guarded steering
        clauses (:meth:`add_guarded_clause`).

        After None, :attr:`failed_assumptions` holds the failed
        assumption core when the database stays satisfiable ([] when the
        program has no stable models at all); the engine remains usable
        either way unless the database itself became unsatisfiable.
        """
        self.failed_assumptions = None
        if self._exhausted:
            self.failed_assumptions = []
            return None
        while True:
            if self.deadline is not None:
                self.deadline.check()
            if not self.solver.solve(assumptions):
                if not self.solver.ok:
                    self._exhausted = True
                self.failed_assumptions = list(
                    self.solver.failed_assumptions or []
                )
                return None
            values = self.solver.model()
            candidate = frozenset(
                atom for atom in self.head_atoms if values[atom]
            )
            self._candidates_tested += 1
            if self.is_normal:
                least = self._least_model_of_reduct(candidate)
                if least == candidate:
                    self._models_found += 1
                    return candidate
                self._refine_with_unfounded(frozenset(candidate - least))
            else:
                witness = self._minimality_witness(candidate)
                if witness is None:
                    self._models_found += 1
                    return candidate
                self._refine_with_unfounded(frozenset(candidate - witness))

    def next_stable_model(self) -> frozenset[int] | None:
        """The next stable model (a frozenset of atom ids), or None."""
        if self._exhausted:
            return None
        while True:
            if self.deadline is not None:
                self.deadline.check()
            if not self.solver.solve():
                self._exhausted = True
                return None
            values = self.solver.model()
            # Headless atoms are forced false by the generator, so the
            # candidate is determined by the head atoms alone.
            candidate = frozenset(
                atom for atom in self.head_atoms if values[atom]
            )
            self._candidates_tested += 1
            if self.is_normal:
                least = self._least_model_of_reduct(candidate)
                if least == candidate:
                    self._exclude(candidate)
                    self._models_found += 1
                    return candidate
                self._refine_with_unfounded(frozenset(candidate - least))
            else:
                witness = self._minimality_witness(candidate)
                if witness is None:
                    self._exclude(candidate)
                    self._models_found += 1
                    return candidate
                self._refine_with_unfounded(frozenset(candidate - witness))

    def _exclude(self, model: frozenset[int]) -> None:
        """Exclude exactly this atom assignment (for enumeration).

        The blocking clause ranges over the head atoms only: every stable
        model agrees on the remaining (forced-false) atoms, so a clause
        over the full atom range would block exactly the same assignments
        while being as wide as the atom table.
        """
        clause = [
            -atom if atom in model else atom for atom in self.head_atoms
        ]
        if not self.solver.add_clause(clause):
            self._exhausted = True

    @property
    def statistics(self) -> dict[str, int]:
        """Search statistics: the SAT solver's counters plus the
        generate-and-test loop's own (candidates tested against
        minimality, stable models found, loop formulas installed)."""
        stats = dict(self.solver.statistics)
        stats["candidates_tested"] = self._candidates_tested
        stats["stable_models_found"] = self._models_found
        stats["loop_formulas"] = self._loop_formulas
        # Clauses beyond the initial program encoding: loop refinements,
        # CDCL learned clauses, and guarded steering clauses — the
        # knowledge an incremental family solve carries across candidates.
        stats["carried_clauses"] = len(self.solver.clauses) - self._base_clauses
        return stats

    def stable_models(self, limit: int | None = None) -> Iterator[frozenset[int]]:
        """Yield stable models until exhaustion (or ``limit`` models)."""
        produced = 0
        while limit is None or produced < limit:
            model = self.next_stable_model()
            if model is None:
                return
            produced += 1
            yield model
