"""A CDCL SAT solver.

Conflict-driven clause learning with two watched literals, first-UIP conflict
analysis, non-chronological backjumping, VSIDS-style variable activities,
Luby restarts, and phase saving.  Incremental: clauses may be added between
``solve`` calls, and ``solve`` accepts assumption literals.

When a solve is unsatisfiable *under its assumptions*, final-conflict
analysis (the ``analyzeFinal`` of MiniSat) walks the implication graph of
the falsified assumption back to the assumptions it depends on and records
that subset in :attr:`SatSolver.failed_assumptions` — the **failed core**.
The core distinguishes "unsatisfiable because of these assumptions" (a
non-empty core; dropping it restores satisfiability) from "the clause
database itself is unsatisfiable" (an empty core, ``ok`` now False).
Assumption-based callers — the family solver of
:mod:`repro.asp.reasoning` — use the core to skip goals already refuted
by learned clauses without a fresh search.

Literals are non-zero integers: ``+v`` is the positive literal of variable
``v``, ``-v`` the negative one (variables are 1-based).  Internally a literal
``l`` is indexed as ``2*v + (1 if l < 0 else 0)``.

The stable-model engine uses this solver both to generate model candidates
(with default phases biasing toward small models) and to run minimality
checks on reducts.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

_UNASSIGNED = -1

#: Search-loop iterations (one conflict or decision each) between
#: cooperative interrupt checks — frequent enough that a budgeted solve
#: stops within milliseconds of its deadline, rare enough to be free.
_INTERRUPT_GRANULARITY = 64


def _lit_index(lit: int) -> int:
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


class SatSolver:
    """A CDCL SAT solver over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = 0
        # Per-variable state.
        self.assign: list[int] = [_UNASSIGNED]  # 0 false, 1 true (index 0 unused)
        self.level: list[int] = [0]
        self.reason: list[list[int] | None] = [None]
        self.activity: list[float] = [0.0]
        self.phase: list[int] = [0]  # saved phase: 0 false, 1 true
        # Watches: literal index -> list of clauses.
        self.watches: list[list[list[int]]] = [[], []]
        self.clauses: list[list[int]] = []
        self.trail: list[int] = []  # assigned literals in order
        self.trail_lim: list[int] = []  # trail positions per decision level
        self.propagate_head = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.ok = True  # False once a top-level conflict is found
        self._conflicts_total = 0
        self._propagations_total = 0
        self._decisions_total = 0
        self._restarts_total = 0
        self._interrupt_polls_total = 0
        # Cooperative cancellation: when set, called every
        # ``_INTERRUPT_GRANULARITY`` search-loop iterations; it may raise
        # (e.g. ``SolveBudgetExceeded``) to abort the search.  None (the
        # default) costs one attribute test per loop iteration.
        self.interrupt_check = None
        self._interrupt_tick = 0
        # After an unsatisfiable ``solve(assumptions)``: the subset of the
        # assumptions responsible (the failed core, in assumption order);
        # [] when the clause database alone is unsatisfiable; None after a
        # satisfiable solve (or before the first one).
        self.failed_assumptions: list[int] | None = None
        # Lazy max-activity heap of decision candidates: (-activity, var).
        self._order: list[tuple[float, int]] = []
        if num_vars:
            self.add_vars(num_vars)

    # ------------------------------------------------------------ variables

    def add_vars(self, count: int) -> None:
        """Grow the variable universe by ``count`` fresh variables."""
        if count <= 0:
            return
        first = self.num_vars + 1
        self.num_vars += count
        self.assign.extend([_UNASSIGNED] * count)
        self.level.extend([0] * count)
        self.reason.extend([None] * count)
        self.activity.extend([0.0] * count)
        self.phase.extend([0] * count)
        self.watches.extend([] for _ in range(2 * count))
        for var in range(first, self.num_vars + 1):
            heapq.heappush(self._order, (0.0, var))

    def new_var(self) -> int:
        self.add_vars(1)
        return self.num_vars

    def set_default_phase(self, var: int, value: bool) -> None:
        """Set the initial saved phase of ``var`` (biases the first model)."""
        self.phase[var] = 1 if value else 0

    # -------------------------------------------------------------- clauses

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        May be called between ``solve`` calls: the solver first backtracks
        to decision level 0.  Tautologies are dropped; duplicate literals
        are merged; literals already false at level 0 are removed.
        """
        if not self.ok:
            return False
        self._backtrack(0)
        seen: set[int] = set()
        lits: list[int] = []
        for lit in literals:
            if lit in seen:
                continue
            if -lit in seen:
                return True  # tautology
            var = abs(lit)
            if var > self.num_vars:
                raise ValueError(f"literal {lit} exceeds variable count {self.num_vars}")
            value = self.assign[var]
            if value != _UNASSIGNED and self.level[var] == 0:
                if (value == 1) == (lit > 0):
                    return True  # already satisfied at top level
                continue  # falsified at top level: drop literal
            seen.add(lit)
            lits.append(lit)

        if not lits:
            self.ok = False
            return False
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self.ok = False
                return False
            self.ok = self.propagate() is None
            return self.ok
        clause = lits
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def add_clauses(self, clause_iter: Iterable[Iterable[int]]) -> bool:
        """Bulk clause loading: :meth:`add_clause` semantics, one backtrack.

        Backtracks to level 0 once, streams the clauses through the same
        level-0 simplification (tautology and duplicate removal, satisfied
        clauses dropped, falsified literals stripped), but enqueues unit
        clauses without propagating until the end — one propagation pass
        settles the whole batch.  Deferring is sound because every literal
        a pending unit assigns is already visible in ``assign`` (enqueue
        writes it immediately), so later clauses in the batch still
        simplify against it, and the final propagation restores the watch
        invariant for every clause touched by the new units.

        Returns False (and clears ``ok``) if the formula became
        unsatisfiable.  This is the clause-construction fast path for the
        compact generator encoding, where per-clause backtrack/propagate
        bookkeeping dominated build time.
        """
        if not self.ok:
            return False
        self._backtrack(0)
        assign = self.assign
        level = self.level
        num_vars = self.num_vars
        for literals in clause_iter:
            kept: list[int] = []
            satisfied = False
            for lit in literals:
                var = lit if lit > 0 else -lit
                if var > num_vars:
                    raise ValueError(
                        f"literal {lit} exceeds variable count {num_vars}"
                    )
                value = assign[var]
                if value != _UNASSIGNED and level[var] == 0:
                    if (value == 1) == (lit > 0):
                        satisfied = True
                        break
                    continue  # falsified at top level: drop literal
                kept.append(lit)
            if satisfied:
                continue
            if len(kept) > 1:
                # Tautology / duplicate-literal removal (rare; the common
                # two-literal case avoids building a set).
                if len(kept) == 2:
                    if kept[0] == -kept[1]:
                        continue
                    if kept[0] == kept[1]:
                        kept.pop()
                else:
                    seen: set[int] = set()
                    unique: list[int] = []
                    tautology = False
                    for lit in kept:
                        if -lit in seen:
                            tautology = True
                            break
                        if lit not in seen:
                            seen.add(lit)
                            unique.append(lit)
                    if tautology:
                        continue
                    kept = unique
            if not kept:
                self.ok = False
                return False
            if len(kept) == 1:
                if not self._enqueue(kept[0], None):
                    self.ok = False
                    return False
                continue
            self.clauses.append(kept)
            self.watches[_lit_index(-kept[0])].append(kept)
            self.watches[_lit_index(-kept[1])].append(kept)
        self.ok = self.ok and self.propagate() is None
        return self.ok

    def add_clauses_raw(self, clause_iter: Iterable[list[int]]) -> bool:
        """Bulk clause loading without per-literal simplification.

        The caller owns the invariants :meth:`add_clause` normally
        enforces; violating them corrupts the watch scheme silently.
        Each clause must:

        - contain no duplicate literals and no tautological pair,
        - mention no variable that was assigned before the call (variables
          assigned *during* the batch by its own unit clauses are fine —
          their watch lists are revisited by the final propagation),
        - stay within the current variable universe.

        The engine's compact generator qualifies: it emits structurally
        clean clauses over fresh variables, with the handful of edge cases
        (``true_var`` mentions, self-referential single-literal bodies)
        filtered at construction.  Clause lists are adopted, not copied.
        """
        if not self.ok:
            return False
        clauses = self.clauses
        watches = self.watches
        for lits in clause_iter:
            if len(lits) > 1:
                clauses.append(lits)
                first, second = lits[0], lits[1]
                watches[_lit_index(-first)].append(lits)
                watches[_lit_index(-second)].append(lits)
            elif lits:
                if not self._enqueue(lits[0], None):
                    self.ok = False
                    return False
            else:
                self.ok = False
                return False
        self.ok = self.propagate() is None
        return self.ok

    def _watch(self, clause: list[int]) -> None:
        self.watches[_lit_index(-clause[0])].append(clause)
        self.watches[_lit_index(-clause[1])].append(clause)

    # ---------------------------------------------------------- assignments

    def value_of(self, lit: int) -> int:
        """1 if lit is true, 0 if false, -1 if unassigned."""
        value = self.assign[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else 1 - value

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        var = abs(lit)
        current = self.assign[var]
        if current != _UNASSIGNED:
            return (current == 1) == (lit > 0)
        self.assign[var] = 1 if lit > 0 else 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while self.propagate_head < len(self.trail):
            lit = self.trail[self.propagate_head]
            self.propagate_head += 1
            self._propagations_total += 1
            watch_list = self.watches[_lit_index(lit)]
            kept: list[list[int]] = []
            conflict: list[int] | None = None
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                index += 1
                # Normalize: watched literals are clause[0], clause[1].
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self.value_of(first) == 1:
                    kept.append(clause)
                    continue
                # Look for a replacement watch.
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if self.value_of(candidate) != 0:
                        clause[1] = candidate
                        clause[position] = -lit
                        self.watches[_lit_index(-candidate)].append(clause)
                        found = True
                        break
                if found:
                    continue
                kept.append(clause)
                if self.value_of(first) == 0:
                    # Conflict: keep the remaining watchers and report.
                    kept.extend(watch_list[index:])
                    conflict = clause
                    break
                self._enqueue(first, clause)
            watch_list[:] = kept
            if conflict is not None:
                return conflict
        return None

    # ----------------------------------------------------- conflict analysis

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(1, self.num_vars + 1):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
            self._order = [(-self.activity[v], v) for v in range(1, self.num_vars + 1)]
            heapq.heapify(self._order)
        else:
            heapq.heappush(self._order, (-self.activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        current_level = len(self.trail_lim)
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        trail_pos = len(self.trail) - 1
        reason: Sequence[int] = conflict

        while True:
            for clause_lit in reason:
                # Skip the literal this reason clause propagated (the trail
                # literal itself, i.e. the negation of the resolvent `lit`).
                if clause_lit == -lit:
                    continue
                var = abs(clause_lit)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(clause_lit)
            # Pick the next literal to resolve on from the trail.
            while not seen[abs(self.trail[trail_pos])]:
                trail_pos -= 1
            lit = -self.trail[trail_pos]
            seen[abs(lit)] = False
            trail_pos -= 1
            counter -= 1
            if counter == 0:
                break
            var_reason = self.reason[abs(lit)]
            assert var_reason is not None
            reason = var_reason
        learned[0] = lit

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        max_pos = 1
        for position in range(2, len(learned)):
            if self.level[abs(learned[position])] > self.level[abs(learned[max_pos])]:
                max_pos = position
        learned[1], learned[max_pos] = learned[max_pos], learned[1]
        return learned, self.level[abs(learned[1])]

    def _analyze_final(self, failed: int, assumptions: Sequence[int]) -> list[int]:
        """The failed-assumption core: the subset of ``assumptions`` whose
        conjunction the clause database refutes.

        ``failed`` is an assumption found false during assumption
        re-assertion (its negation is on the trail).  Walking the trail
        backwards through the reason clauses of every marked variable
        reaches exactly the decisions the falsification depends on — and
        during the re-assertion scan every decision on the trail is an
        earlier assumption (free decisions only happen once all
        assumptions hold, and any backjump that unassigned an assumption
        removed the later free decisions with it).
        """
        assumed = set(assumptions)
        core = {failed}
        if not self.trail_lim:
            return [failed]  # falsified by top-level propagation alone
        seen = [False] * (self.num_vars + 1)
        seen[abs(failed)] = True
        for position in range(len(self.trail) - 1, self.trail_lim[0] - 1, -1):
            lit = self.trail[position]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self.reason[var]
            if reason is None:
                # A decision — an assumption (see docstring); record it.
                if lit in assumed:
                    core.add(lit)
            else:
                for clause_lit in reason:
                    if clause_lit == lit:
                        continue
                    if self.level[abs(clause_lit)] > 0:
                        seen[abs(clause_lit)] = True
            seen[var] = False
        # Report in assumption order (deduplicated) for deterministic
        # consumers.
        ordered: list[int] = []
        for lit in assumptions:
            if lit in core and lit not in ordered:
                ordered.append(lit)
        return ordered or [failed]

    def _backtrack(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        for position in range(len(self.trail) - 1, limit - 1, -1):
            lit = self.trail[position]
            var = abs(lit)
            self.phase[var] = self.assign[var]
            self.assign[var] = _UNASSIGNED
            self.reason[var] = None
            heapq.heappush(self._order, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.propagate_head = min(self.propagate_head, len(self.trail))

    # -------------------------------------------------------------- search

    def _decide(self) -> int:
        """Pick an unassigned variable with maximal activity; 0 if none.

        Uses a lazy heap: stale entries (assigned variables, outdated
        activities) are discarded on pop.
        """
        while self._order:
            neg_activity, var = heapq.heappop(self._order)
            if self.assign[var] == _UNASSIGNED and -neg_activity == self.activity[var]:
                return var if self.phase[var] == 1 else -var
        # Heap exhausted by staleness: repopulate it with every unassigned
        # variable (at its current activity) so this O(n) rebuild is paid
        # once and subsequent decisions are O(log n) again, instead of
        # degrading to a linear scan on every remaining decision.
        rebuilt = [
            (-self.activity[var], var)
            for var in range(1, self.num_vars + 1)
            if self.assign[var] == _UNASSIGNED
        ]
        if not rebuilt:
            return 0
        heapq.heapify(rebuilt)
        self._order = rebuilt
        _neg_activity, var = heapq.heappop(self._order)
        return var if self.phase[var] == 1 else -var

    @staticmethod
    def _luby(index: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (0-based index)."""
        size, sequence = 1, 0
        while size < index + 1:
            sequence += 1
            size = 2 * size + 1
        while size - 1 != index:
            size = (size - 1) // 2
            sequence -= 1
            index = index % size
        return 1 << sequence

    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Search for a model; True if satisfiable (under the assumptions).

        After True, :meth:`model` returns the satisfying assignment.  The
        solver state (learned clauses, activities, phases) persists across
        calls; assumptions do not.  After False,
        :attr:`failed_assumptions` holds the failed-assumption core ([]
        when the clause database is unsatisfiable outright).
        """
        self.failed_assumptions = [] if not self.ok else None
        if not self.ok:
            return False
        self._backtrack(0)
        conflict = self.propagate()
        if conflict is not None:
            self.ok = False
            self.failed_assumptions = []
            return False

        restart_count = 0
        conflict_budget = 64 * self._luby(restart_count)
        conflicts_here = 0

        while True:
            if self.interrupt_check is not None:
                self._interrupt_tick += 1
                if self._interrupt_tick >= _INTERRUPT_GRANULARITY:
                    self._interrupt_tick = 0
                    self._interrupt_polls_total += 1
                    self.interrupt_check()
            conflict = self.propagate()
            if conflict is not None:
                self._conflicts_total += 1
                conflicts_here += 1
                if len(self.trail_lim) == 0:
                    self.ok = False
                    self.failed_assumptions = []
                    return False
                # First-UIP analysis assumes the conflict clause contains a
                # literal at the current decision level; if the conflict sits
                # entirely below it, fall back to that level first.
                conflict_level = max(self.level[abs(lit)] for lit in conflict)
                if conflict_level == 0:
                    self.ok = False
                    self.failed_assumptions = []
                    return False
                if conflict_level < len(self.trail_lim):
                    self._backtrack(conflict_level)
                # If the backjump target is inside the assumptions, the
                # decision loop re-asserts them on the way back down.
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learned) > 1:
                    self.clauses.append(learned)
                    self._watch(learned)
                if not self._enqueue(learned[0], learned if len(learned) > 1 else None):
                    self.ok = False
                    self.failed_assumptions = []
                    return False
                self.var_inc /= self.var_decay
                if conflicts_here >= conflict_budget:
                    restart_count += 1
                    self._restarts_total += 1
                    conflict_budget = 64 * self._luby(restart_count)
                    conflicts_here = 0
                    self._backtrack(0)
                continue

            # Re-assert any assumption not yet satisfied.
            decision = 0
            for assumption in assumptions:
                value = self.value_of(assumption)
                if value == 0:
                    # Assumption conflicts with forced literals: compute the
                    # failed core (the subset of assumptions responsible) via
                    # MiniSat-style final-conflict analysis so callers can
                    # skip other candidate sets sharing that core.  The
                    # clause database itself stays satisfiable (ok holds).
                    self.failed_assumptions = self._analyze_final(
                        assumption, assumptions
                    )
                    return False
                if value == _UNASSIGNED:
                    decision = assumption
                    break
            if decision == 0:
                decision = self._decide()
                if decision == 0:
                    return True  # complete assignment: model found
            self._decisions_total += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)

    def model(self) -> list[bool]:
        """The satisfying assignment found by the last successful solve.

        Index 0 is unused; ``model()[v]`` is the value of variable ``v``.
        """
        return [value == 1 for value in self.assign]

    def top_level_value(self, lit: int) -> int:
        """The literal's value under top-level propagation alone.

        1 true, 0 false, -1 when the clause database does not force it
        at decision level 0.  Restores the solver to level 0 (cheap when
        already there) and completes pending unit propagation first, so
        the answer reflects every clause added so far.  Sound for *all*
        models of the database — which overapproximate the stable models
        when the database is a generator encoding.
        """
        if not self.ok:
            return _UNASSIGNED
        self._backtrack(0)
        if self.propagate() is not None:
            self.ok = False
            self.failed_assumptions = []
            return _UNASSIGNED
        var = abs(lit)
        if var > self.num_vars or self.assign[var] == _UNASSIGNED:
            return _UNASSIGNED
        if self.level[var] != 0:
            return _UNASSIGNED
        return self.value_of(lit)

    @property
    def statistics(self) -> dict[str, int]:
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses),
            "conflicts": self._conflicts_total,
            "propagations": self._propagations_total,
            "decisions": self._decisions_total,
            "restarts": self._restarts_total,
            "interrupt_polls": self._interrupt_polls_total,
        }
