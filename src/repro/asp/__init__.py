"""Disjunctive logic programming under the stable model semantics.

This subpackage plays the role of **clingo** in the paper's experiments:
the monolithic and segmentary XR-Certain engines both hand their programs
to this solver.

Pipeline:

- :mod:`repro.asp.syntax`    — non-ground rules, ground programs, atom table;
- :mod:`repro.asp.grounder`  — relevance-driven bottom-up grounding;
- :mod:`repro.asp.sat`       — a CDCL SAT solver (watched literals, VSIDS,
  first-UIP learning, restarts, phase saving);
- :mod:`repro.asp.stable`    — stable models of ground disjunctive programs
  (generate-and-test with a SAT minimality check; head-cycle-free programs
  are shifted to normal rules and checked with least-model-of-reduct plus
  ASSAT-style loop refinement);
- :mod:`repro.asp.reasoning` — cautious and brave consequences.
"""

from repro.asp.syntax import (
    AtomTable,
    Comparison,
    GroundProgram,
    GroundRule,
    Rule,
)
from repro.asp.grounder import ground
from repro.asp.sat import SatSolver
from repro.asp.stable import StableModelEngine, is_head_cycle_free, shift_disjunctions
from repro.asp.reasoning import brave_consequences, cautious_consequences

__all__ = [
    "AtomTable",
    "Comparison",
    "GroundProgram",
    "GroundRule",
    "Rule",
    "ground",
    "SatSolver",
    "StableModelEngine",
    "is_head_cycle_free",
    "shift_disjunctions",
    "brave_consequences",
    "cautious_consequences",
]
