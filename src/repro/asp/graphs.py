"""Minimal graph algorithms for the ASP engine.

The stable-model engine needs exactly one graph primitive — strongly
connected components of the positive dependency graph — on int-keyed
adjacency it already has in hand.  An in-repo iterative Tarjan avoids
materializing a ``networkx`` graph object per program build (node/edge
dict-of-dicts churn) and keeps the solver hot path dependency-free.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_NO_EDGES: tuple[int, ...] = ()


def tarjan_scc(adjacency: Mapping[int, Sequence[int]]) -> list[list[int]]:
    """Strongly connected components of a directed graph.

    ``adjacency`` maps a node to its successors.  Nodes appearing only as
    successors are treated as having no outgoing edges.  Components are
    returned in reverse topological order (successors before predecessors),
    as Tarjan's algorithm produces them; the traversal is iterative, so
    deep chains do not hit the recursion limit.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in adjacency:
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_index = work.pop()
            if edge_index == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            successors = adjacency.get(node, _NO_EDGES)
            descended = False
            for position in range(edge_index, len(successors)):
                successor = successors[position]
                if successor not in index_of:
                    work.append((node, position + 1))
                    work.append((successor, 0))
                    descended = True
                    break
                if successor in on_stack and index_of[successor] < lowlink[node]:
                    lowlink[node] = index_of[successor]
            if descended:
                continue
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.remove(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return components


def nontrivial_sccs(adjacency: Mapping[int, Sequence[int]]) -> list[list[int]]:
    """The SCCs of size >= 2 (the only ones that can carry a positive loop).

    A self-loop (``a ← a``) also forms a loop, but the callers here operate
    on dependency graphs whose self-loops are tautological rules that were
    already filtered out.
    """
    return [c for c in tarjan_scc(adjacency) if len(c) >= 2]
