"""Cautious and brave reasoning over stable models.

The cautious answers to a query w.r.t. a program are the atoms true in
**every** stable model (Section 2 of the paper); brave answers are true in
**some** stable model.  Both are computed by iterative constraining, the
same technique clingo uses (``--enum-mode=cautious``):

- start from the first stable model;
- keep a shrinking candidate set ``C``; repeatedly demand a stable model in
  which some member of ``C`` is false; intersect; stop when none exists.

Each added clause only excludes models that could not change the result, so
a single engine instance (with all its learned clauses) is reused throughout.
"""

from __future__ import annotations

from typing import Iterable

from repro.asp.stable import StableModelEngine
from repro.asp.syntax import GroundProgram


def cautious_consequences(
    program: GroundProgram,
    query_atoms: Iterable[int],
    engine: StableModelEngine | None = None,
    deadline=None,
) -> frozenset[int] | None:
    """Atoms among ``query_atoms`` true in every stable model.

    Returns ``None`` when the program has no stable model at all (in which
    case cautious consequence trivializes).  ``deadline`` (a
    :class:`~repro.runtime.budget.Deadline`) aborts the computation with
    :class:`~repro.runtime.budget.SolveBudgetExceeded` when it passes.
    """
    if engine is None:
        engine = StableModelEngine(program, deadline=deadline)
    first = engine.next_stable_model()
    if first is None:
        return None
    candidates = frozenset(query_atoms) & first
    while candidates:
        if deadline is not None:
            deadline.check()
        engine.add_atom_clause([-atom for atom in candidates])
        model = engine.next_stable_model()
        if model is None:
            break
        candidates &= model
    return candidates


def brave_consequences(
    program: GroundProgram,
    query_atoms: Iterable[int],
    engine: StableModelEngine | None = None,
    deadline=None,
) -> frozenset[int] | None:
    """Atoms among ``query_atoms`` true in at least one stable model.

    Returns ``None`` when the program has no stable model.  ``deadline``
    behaves as in :func:`cautious_consequences`.
    """
    if engine is None:
        engine = StableModelEngine(program, deadline=deadline)
    goal = frozenset(query_atoms)
    first = engine.next_stable_model()
    if first is None:
        return None
    found = goal & first
    missing = goal - found
    while missing:
        if deadline is not None:
            deadline.check()
        engine.add_atom_clause(list(missing))
        model = engine.next_stable_model()
        if model is None:
            break
        found |= goal & model
        missing = goal - found
    return found
