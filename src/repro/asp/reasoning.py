"""Cautious and brave reasoning over stable models.

The cautious answers to a query w.r.t. a program are the atoms true in
**every** stable model (Section 2 of the paper); brave answers are true in
**some** stable model.  Both are computed by iterative constraining, the
same technique clingo uses (``--enum-mode=cautious``):

- start from the first stable model;
- keep a shrinking candidate set ``C``; repeatedly demand a stable model in
  which some member of ``C`` is false; intersect; stop when none exists.

Each added clause only excludes models that could not change the result, so
a single engine instance (with all its learned clauses) is reused throughout.

:func:`decide_family` generalizes both directions to *family solving*: all
candidate goal atoms of a cluster family are decided on one engine via
assumption-guarded steering clauses (:meth:`StableModelEngine.solve_under`),
so CDCL learned clauses, loop formulas, variable activities, and saved
phases carry across every candidate instead of being rebuilt per signature
group.  Soundness hinges on what persists: loop formulas and learned
clauses hold in *every* stable model, while per-round steering clauses
(which do not) stay behind selector literals and are retired after use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.asp.stable import StableModelEngine
from repro.asp.syntax import GroundProgram


def cautious_consequences(
    program: GroundProgram,
    query_atoms: Iterable[int],
    engine: StableModelEngine | None = None,
    deadline=None,
) -> frozenset[int] | None:
    """Atoms among ``query_atoms`` true in every stable model.

    Returns ``None`` when the program has no stable model at all (in which
    case cautious consequence trivializes).  ``deadline`` (a
    :class:`~repro.runtime.budget.Deadline`) aborts the computation with
    :class:`~repro.runtime.budget.SolveBudgetExceeded` when it passes.
    """
    if engine is None:
        engine = StableModelEngine(program, deadline=deadline)
    first = engine.next_stable_model()
    if first is None:
        return None
    candidates = frozenset(query_atoms) & first
    while candidates:
        if deadline is not None:
            deadline.check()
        engine.add_atom_clause([-atom for atom in candidates])
        model = engine.next_stable_model()
        if model is None:
            break
        candidates &= model
    return candidates


def brave_consequences(
    program: GroundProgram,
    query_atoms: Iterable[int],
    engine: StableModelEngine | None = None,
    deadline=None,
) -> frozenset[int] | None:
    """Atoms among ``query_atoms`` true in at least one stable model.

    Returns ``None`` when the program has no stable model.  ``deadline``
    behaves as in :func:`cautious_consequences`.
    """
    if engine is None:
        engine = StableModelEngine(program, deadline=deadline)
    goal = frozenset(query_atoms)
    first = engine.next_stable_model()
    if first is None:
        return None
    found = goal & first
    missing = goal - found
    while missing:
        if deadline is not None:
            deadline.check()
        engine.add_atom_clause(list(missing))
        model = engine.next_stable_model()
        if model is None:
            break
        found |= goal & model
        missing = goal - found
    return found


@dataclass(frozen=True)
class FamilyVerdicts:
    """Outcome of one :func:`decide_family` run.

    ``accepted``/``rejected`` are exact verdicts (true resp. false under
    the requested mode's quantifier); ``undecided`` is non-empty only
    when the solve budget fired mid-family — those atoms got no verdict
    and degrade to *unknown*, per-candidate rather than per-batch.
    ``no_model`` flags a program with no stable models at all (both
    verdict sets are empty then; the caller owns the convention, mirroring
    the ``None`` returns of :func:`cautious_consequences`).
    """

    accepted: frozenset[int]
    rejected: frozenset[int]
    undecided: frozenset[int] = frozenset()
    no_model: bool = False
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def interrupted(self) -> bool:
        return bool(self.undecided)


def decide_family(
    program: GroundProgram,
    goal_atoms: Iterable[int],
    mode: str = "cautious",
    engine: StableModelEngine | None = None,
    deadline=None,
) -> FamilyVerdicts:
    """Decide every goal atom of a cluster family on **one** engine.

    ``mode="cautious"``: accepted atoms are true in every stable model
    (XR-certain); ``mode="possible"``/``"brave"``: accepted atoms are
    true in at least one (XR-possible).  Equivalent to running
    :func:`cautious_consequences` / :func:`brave_consequences` per
    signature group, but all candidates share the engine's learned
    clauses, loop formulas, and phases:

    - **Entailment skips.**  Atoms already forced at decision level 0 by
      the clause database (program encoding + everything learned so far)
      are decided without any search — the database's models
      overapproximate the stable models, so a top-level forced value
      holds in all of them.
    - **Model harvesting.**  Every stable model found decides *all*
      still-undecided atoms it can (cautious: false-in-model rejects;
      brave: true-in-model accepts), not just the atom that prompted
      the search.
    - **Guarded steering.**  Each refinement round demands a
      counterexample model through a selector-guarded clause activated
      via ``solve(assumptions=[selector])`` and retired afterwards, so
      the unsound-in-general steering constraint never pollutes the
      shared clause database.

    A :class:`~repro.runtime.budget.SolveBudgetExceeded` raised by
    ``deadline`` degrades per-candidate: verdicts reached before the
    interrupt are exact and kept; the rest return in ``undecided``.
    """
    # Deferred to dodge the repro.asp ↔ repro.runtime package cycle (the
    # budget module itself is stdlib-only).
    from repro.runtime.budget import SolveBudgetExceeded

    if mode not in ("cautious", "possible", "brave"):
        raise ValueError(f"unknown family mode {mode!r}")
    brave = mode != "cautious"
    if engine is None:
        engine = StableModelEngine(program, deadline=deadline, compact=True)
    undecided = set(goal_atoms)
    accepted: set[int] = set()
    rejected: set[int] = set()
    core_skips = 0
    models_found = 0

    def verdicts(no_model: bool = False) -> FamilyVerdicts:
        stats = dict(engine.statistics)
        stats["core_skips"] = core_skips
        stats["family_models"] = models_found
        return FamilyVerdicts(
            accepted=frozenset(accepted),
            rejected=frozenset(rejected),
            undecided=frozenset(undecided),
            no_model=no_model,
            stats=stats,
        )

    def harvest(model: frozenset[int]) -> None:
        # One model decides every undecided atom it can: under cautious a
        # false atom cannot be in all models; under brave a true atom is
        # witnessed.  This is what makes non-excluding search complete —
        # no model's evidence is ever thrown away.
        if brave:
            decided = {atom for atom in undecided if atom in model}
            accepted.update(decided)
        else:
            decided = {atom for atom in undecided if atom not in model}
            rejected.update(decided)
        undecided.difference_update(decided)

    try:
        first = engine.solve_under()
        if first is None:
            undecided.clear()
            return verdicts(no_model=True)
        models_found += 1
        # Level-0 entailment pass (after existence is established): the
        # clause database alone settles atoms the search never needs to
        # touch — on warm engines, cores learned from earlier candidates.
        for atom in sorted(undecided):
            value = engine.entailed_value(atom)
            if value == 1:
                accepted.add(atom)
                undecided.discard(atom)
                core_skips += 1
            elif value == 0:
                rejected.add(atom)
                undecided.discard(atom)
                core_skips += 1
        harvest(first)
        while undecided:
            if deadline is not None:
                deadline.check()
            selector = engine.new_selector()
            if brave:
                # Demand a model witnessing some still-unwitnessed atom.
                engine.add_guarded_clause(selector, sorted(undecided))
            else:
                # Demand a counterexample refuting some candidate.
                engine.add_guarded_clause(
                    selector, [-atom for atom in sorted(undecided)]
                )
            model = engine.solve_under([selector])
            engine.retire_selector(selector)
            if model is None:
                # No stable model can steer further: every remaining atom
                # resolves to the quantifier's default.
                if brave:
                    rejected.update(undecided)
                else:
                    accepted.update(undecided)
                undecided.clear()
                break
            models_found += 1
            harvest(model)
    except SolveBudgetExceeded:
        # Per-candidate degradation: everything decided so far is exact;
        # the remainder stays undecided (reported unknown upstream).
        pass
    return verdicts()
