"""Rule syntax and ground program representation for the DLP solver.

Non-ground rules reuse the relational :class:`~repro.relational.queries.Atom`
vocabulary; ground programs intern ground atoms (facts) to integer ids so the
solver can work with machine integers.

A rule has the shape::

    α1 ∨ ... ∨ αn ← β1, ..., βm, ¬γ1, ..., ¬γk, c1, ..., cj.

with atoms ``α, β, γ`` and builtin comparisons ``c`` (``t ≠ t'`` and the
``const(t)`` test used by the reduction's constants-only egds).  An empty
head is an integrity constraint.  Rules must be *safe*: every variable in
the head, in a negative literal, or in a comparison must occur in a positive
body atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.relational.instance import Fact
from repro.relational.queries import Atom
from repro.relational.terms import Const, Variable, is_constant_value

NEQ = "neq"
IS_CONST = "const"


@dataclass(frozen=True)
class Comparison:
    """A builtin literal: ``neq(left, right)`` or ``const(left)``."""

    op: str
    left: Variable | Const
    right: Variable | Const | None = None

    def __post_init__(self) -> None:
        if self.op not in (NEQ, IS_CONST):
            raise ValueError(f"unknown comparison op {self.op!r}")
        if self.op == NEQ and self.right is None:
            raise ValueError("neq needs two terms")

    def variables(self) -> set[Variable]:
        out = set()
        if isinstance(self.left, Variable):
            out.add(self.left)
        if isinstance(self.right, Variable):
            out.add(self.right)
        return out

    def holds(self, binding: dict[Variable, Any]) -> bool:
        left = binding[self.left] if isinstance(self.left, Variable) else self.left.value
        if self.op == IS_CONST:
            return is_constant_value(left)
        right = (
            binding[self.right] if isinstance(self.right, Variable) else self.right.value
        )
        return left != right

    def __repr__(self) -> str:
        if self.op == IS_CONST:
            return f"const({self.left!r})"
        return f"{self.left!r} != {self.right!r}"


class Rule:
    """A (possibly non-ground) disjunctive rule."""

    __slots__ = ("head", "body_pos", "body_neg", "comparisons", "label")

    def __init__(
        self,
        head: Sequence[Atom],
        body_pos: Sequence[Atom] = (),
        body_neg: Sequence[Atom] = (),
        comparisons: Sequence[Comparison] = (),
        label: str = "",
    ):
        self.head = tuple(head)
        self.body_pos = tuple(body_pos)
        self.body_neg = tuple(body_neg)
        self.comparisons = tuple(comparisons)
        self.label = label
        self._check_safety()

    def _check_safety(self) -> None:
        positive_vars: set[Variable] = set()
        for atom in self.body_pos:
            positive_vars |= atom.variables()
        needed: set[Variable] = set()
        for atom in self.head:
            needed |= atom.variables()
        for atom in self.body_neg:
            needed |= atom.variables()
        for comparison in self.comparisons:
            needed |= comparison.variables()
        unsafe = needed - positive_vars
        if unsafe:
            names = sorted(v.name for v in unsafe)
            raise ValueError(
                f"unsafe rule {self.label or self!r}: variables {names} "
                "do not occur in a positive body atom"
            )

    def is_constraint(self) -> bool:
        return not self.head

    def is_fact_rule(self) -> bool:
        return len(self.head) == 1 and not (
            self.body_pos or self.body_neg or self.comparisons
        )

    def __repr__(self) -> str:
        head = " | ".join(repr(a) for a in self.head) if self.head else "⊥"
        parts = [repr(a) for a in self.body_pos]
        parts.extend(f"not {a!r}" for a in self.body_neg)
        parts.extend(repr(c) for c in self.comparisons)
        if not parts:
            return f"{head}."
        return f"{head} :- {', '.join(parts)}."


class AtomTable:
    """Bidirectional mapping between ground atoms (facts) and 1-based ids."""

    __slots__ = ("_by_fact", "_by_id")

    def __init__(self) -> None:
        self._by_fact: dict[Fact, int] = {}
        self._by_id: list[Fact | None] = [None]  # index 0 unused

    def intern(self, fact: Fact) -> int:
        atom_id = self._by_fact.get(fact)
        if atom_id is None:
            atom_id = len(self._by_id)
            self._by_fact[fact] = atom_id
            self._by_id.append(fact)
        return atom_id

    def id_of(self, fact: Fact) -> int | None:
        return self._by_fact.get(fact)

    def fact_of(self, atom_id: int) -> Fact:
        if not 1 <= atom_id < len(self._by_id):
            raise KeyError(f"no atom with id {atom_id}")
        fact = self._by_id[atom_id]
        assert fact is not None
        return fact

    def __len__(self) -> int:
        return len(self._by_id) - 1

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._by_fact

    def ids(self) -> range:
        return range(1, len(self._by_id))


@dataclass(frozen=True)
class GroundRule:
    """A ground rule over interned atom ids (head may be empty)."""

    head: tuple[int, ...]
    body_pos: tuple[int, ...] = ()
    body_neg: tuple[int, ...] = ()

    def is_fact(self) -> bool:
        return len(self.head) == 1 and not self.body_pos and not self.body_neg

    def is_constraint(self) -> bool:
        return not self.head

    def is_disjunctive(self) -> bool:
        return len(self.head) > 1


class GroundProgram:
    """A ground disjunctive program: an atom table plus ground rules."""

    __slots__ = ("atoms", "rules")

    def __init__(self, atoms: AtomTable | None = None, rules: Iterable[GroundRule] = ()):
        self.atoms = atoms if atoms is not None else AtomTable()
        self.rules: list[GroundRule] = list(rules)

    def add_rule(self, rule: GroundRule) -> None:
        self.rules.append(rule)

    def add_fact(self, fact: Fact) -> int:
        atom_id = self.atoms.intern(fact)
        self.rules.append(GroundRule(head=(atom_id,)))
        return atom_id

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[GroundRule]:
        return iter(self.rules)

    def decode(self, atom_ids: Iterable[int]) -> set[Fact]:
        """Translate a set of atom ids back to facts."""
        return {self.atoms.fact_of(atom_id) for atom_id in atom_ids}

    def statistics(self) -> dict[str, int]:
        disjunctive = sum(1 for rule in self.rules if rule.is_disjunctive())
        constraints = sum(1 for rule in self.rules if rule.is_constraint())
        facts = sum(1 for rule in self.rules if rule.is_fact())
        return {
            "atoms": self.num_atoms,
            "rules": len(self.rules),
            "facts": facts,
            "disjunctive_rules": disjunctive,
            "constraints": constraints,
        }
