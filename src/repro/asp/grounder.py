"""Relevance-driven grounding of non-ground rules.

Grounding proceeds in two passes, the standard bottom-up recipe:

1. **Possible atoms.**  Compute an overapproximation of the atoms that can
   ever be derived, by evaluating the *positive projection* of the program
   (each rule contributes one horn rule per head atom; negation and
   comparisons are ignored) to a fixpoint with the semi-naive GAV chase.
2. **Instantiation.**  For every rule, match its positive body against the
   possible atoms, check the comparisons, keep negative literals only when
   their atom is possible (impossible atoms are simply false), and emit the
   ground rule over interned atom ids.

Ground rules whose head intersects their positive body are tautological and
dropped; duplicate ground rules are deduplicated.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.asp.syntax import AtomTable, GroundProgram, GroundRule, Rule
from repro.chase.gav import gav_chase
from repro.dependencies.tgds import TGD
from repro.relational.instance import Fact, Instance
from repro.relational.queries import match_atoms


def compute_possible_atoms(rules: Sequence[Rule], facts: Instance) -> Instance:
    """The positive-projection fixpoint: an overapproximation of derivable atoms."""
    horn: list[TGD] = []
    for rule in rules:
        if not rule.head or not rule.body_pos:
            continue
        for head_atom in rule.head:
            horn.append(TGD(rule.body_pos, [head_atom], label=f"possible:{rule.label}"))
    return gav_chase(facts, horn)


def ground(
    rules: Sequence[Rule],
    facts: Iterable[Fact],
    atoms: AtomTable | None = None,
) -> GroundProgram:
    """Ground ``rules`` relative to ``facts``; returns a :class:`GroundProgram`.

    The input facts become unit rules of the ground program.
    """
    fact_instance = Instance(facts)
    possible = compute_possible_atoms(rules, fact_instance)

    program = GroundProgram(atoms=atoms)
    for fact in fact_instance:
        program.add_fact(fact)

    seen: set[GroundRule] = set()
    for rule in rules:
        if not rule.body_pos and rule.head:
            # Ground disjunctive "fact" rules (no positive body): only legal
            # when already ground; safety has guaranteed no variables.
            ground_rule = GroundRule(
                head=tuple(program.atoms.intern(a.substitute({})) for a in rule.head)
            )
            if ground_rule not in seen:
                seen.add(ground_rule)
                program.add_rule(ground_rule)
            continue

        for binding in match_atoms(possible, list(rule.body_pos)):
            if not all(comparison.holds(binding) for comparison in rule.comparisons):
                continue
            body_pos_facts = [atom.substitute(binding) for atom in rule.body_pos]
            head_facts = [atom.substitute(binding) for atom in rule.head]
            # Tautology: a head atom that is also a positive body atom.
            body_pos_set = set(body_pos_facts)
            if any(fact in body_pos_set for fact in head_facts):
                continue
            body_neg_ids = []
            for atom in rule.body_neg:
                negative_fact = atom.substitute(binding)
                if negative_fact in possible:
                    body_neg_ids.append(program.atoms.intern(negative_fact))
                # An impossible negative atom is false: the literal is true.
            ground_rule = GroundRule(
                head=tuple(program.atoms.intern(f) for f in head_facts),
                body_pos=tuple(program.atoms.intern(f) for f in body_pos_facts),
                body_neg=tuple(body_neg_ids),
            )
            if ground_rule not in seen:
                seen.add(ground_rule)
                program.add_rule(ground_rule)
    return program
