"""Differential fuzzing: the correctness backstop for every engine knob.

The repo's strongest correctness asset is that three independent
implementations of XR-Certain — the Definition 1 oracle, the monolithic
Theorem 2 engine, and the segmentary §6 engine — must agree, across every
runtime configuration (executors, caches, encodings).  This package turns
that observation into infrastructure:

- :mod:`repro.fuzz.generator` — seeded random scenarios (freeform
  wa-glav/egd mappings and iBench-primitive compositions) with knobs for
  instance size, conflict rate, target-tgd depth, existentials,
  skolem-heavy chains, and boolean/UCQ queries;
- :mod:`repro.fuzz.differential` — the cross-engine runner and its
  invariant checks;
- :mod:`repro.fuzz.faults` — deterministic fault injection (seeded worker
  crashes and hangs) proving crash-retry recovery is exact and
  budget-degraded answers bracket the exact ones;
- :mod:`repro.fuzz.shrink` — delta-debugging minimization of failures;
- :mod:`repro.fuzz.corpus` — serialization and replay of minimal repros
  (``tests/corpus/`` is loaded by the tier-1 suite);
- :mod:`repro.fuzz.render` — scenarios ⇄ the parser's text syntax;
- :mod:`repro.fuzz.xval` — the original (frozen, seed-stable) small-scenario
  cross-validation generator, migrated from the test tree.

CLI: ``python -m repro fuzz --seeds N [--jobs N] [--shrink] [--corpus DIR]``.
"""

from repro.fuzz.corpus import (
    XVAL_REGRESSION_SEEDS,
    build_default_corpus,
    default_corpus_entries,
    load_corpus,
    load_repro,
    replay,
    replay_corpus,
    save_repro,
    scenario_digest,
)
from repro.fuzz.differential import (
    DifferentialReport,
    Discrepancy,
    FuzzFailure,
    FuzzSummary,
    check_seed,
    close_shared_executor,
    run_differential,
    run_fuzz,
)
from repro.fuzz.faults import (
    FaultInjectingExecutor,
    FaultPlan,
    fault_plan_for_seed,
    run_fault_check,
)
from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    PROFILES,
    FuzzConfig,
    random_freeform_scenario,
    random_ibench_fuzz_scenario,
    random_scenario,
)
from repro.fuzz.render import (
    RenderError,
    Scenario,
    mappings_equal,
    parse_scenario,
    queries_equal,
    render_dependency,
    render_instance,
    render_mapping,
    render_query,
    render_scenario,
    scenarios_equal,
)
from repro.fuzz.shrink import shrink_scenario
from repro.fuzz.updates import (
    check_update_seed,
    check_update_stream,
    load_update_corpus,
    parse_update_scenario,
    random_update_stream,
    render_update_scenario,
    replay_update_corpus,
    run_update_fuzz,
    save_update_repro,
    shrink_update_stream,
)

__all__ = [
    "DEFAULT_CONFIG",
    "DifferentialReport",
    "Discrepancy",
    "FaultInjectingExecutor",
    "FaultPlan",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzSummary",
    "PROFILES",
    "RenderError",
    "Scenario",
    "XVAL_REGRESSION_SEEDS",
    "build_default_corpus",
    "check_seed",
    "close_shared_executor",
    "default_corpus_entries",
    "fault_plan_for_seed",
    "load_corpus",
    "load_repro",
    "mappings_equal",
    "parse_scenario",
    "queries_equal",
    "random_freeform_scenario",
    "random_ibench_fuzz_scenario",
    "random_scenario",
    "render_dependency",
    "render_instance",
    "render_mapping",
    "render_query",
    "render_scenario",
    "check_update_seed",
    "check_update_stream",
    "load_update_corpus",
    "parse_update_scenario",
    "random_update_stream",
    "render_update_scenario",
    "replay",
    "replay_corpus",
    "replay_update_corpus",
    "run_differential",
    "run_fault_check",
    "run_fuzz",
    "run_update_fuzz",
    "save_repro",
    "save_update_repro",
    "scenario_digest",
    "scenarios_equal",
    "shrink_scenario",
    "shrink_update_stream",
]
