"""Update-workload differential fuzzing (the second pillar of PR 7).

Answer-exactness under updates must be *proven*, not assumed (Hernich's
non-monotonic-query analyses are the cautionary tale): this harness
generates a seeded random insert/retract stream per scenario and checks,
**at every step**, that incremental maintenance
(:class:`~repro.incremental.UpdateSession` over one warm engine, cache and
all) agrees bit-for-bit with a from-scratch re-exchange of the updated
instance:

- the chased instance, the grounding set (keyed by rule label — two
  independent reductions α-rename rule variables), and the canonical
  violation keys;
- the cluster partition (as sets of violation keys) and the cluster
  source envelopes;
- the safe source split and the safe chase;
- XR-certain *and* XR-possible answers to the scenario's query — the
  warm engine answers through its maintained cache, so a stale cache
  entry surviving an invalidation shows up here.

Failures shrink with ddmin over the update stream (drop steps, then thin
individual steps fact-by-fact, then ddmin the scenario's base facts with
the stream pinned) and serialize to ``*.uprepro`` corpus files: the
regular scenario format followed by a ``% --- updates ---`` section in
the :func:`~repro.incremental.render_update_stream` format.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Iterable

from repro.fuzz.differential import FuzzFailure, FuzzSummary
from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    FuzzConfig,
    _constant,
    random_scenario,
)
from repro.fuzz.render import Scenario, parse_scenario, render_scenario
from repro.incremental import (
    Delta,
    apply_delta,
    parse_update_stream,
    render_update_stream,
)
from repro.relational.instance import Fact, Instance
from repro.xr.exchange import violation_key
from repro.xr.segmentary import SegmentaryEngine

#: Section marker separating the scenario from its update stream.
UPDATES_MARKER = "% --- updates ---"
#: Corpus suffix for update repros (distinct from plain ``.repro``).
UPDATE_REPRO_SUFFIX = ".uprepro"


# ------------------------------------------------------ stream generation


def random_update_stream(
    seed: int,
    scenario: Scenario,
    steps: int,
    config: FuzzConfig = DEFAULT_CONFIG,
) -> list[Delta]:
    """A seeded random insert/retract stream against ``scenario``.

    Mixes fresh inserts (drawn from the scenario's constant pool, so they
    collide with existing values and provoke violations), retractions of
    currently-present facts, and re-insertions of previously retracted
    facts (exercising re-derivation through the grounding-key bookkeeping).
    Every step is non-empty; steps may batch up to three operations.
    """
    rng = random.Random(f"updates:{seed}")
    source_rels = list(scenario.mapping.source)
    current = scenario.instance.copy()
    retired: list[Fact] = []
    deltas: list[Delta] = []
    for _ in range(steps):
        inserts: set[Fact] = set()
        retracts: set[Fact] = set()
        for _ in range(1 if rng.random() < 0.7 else rng.randint(2, 3)):
            roll = rng.random()
            present = sorted(current, key=repr)
            if roll < 0.4 and present:
                retracts.add(rng.choice(present))
            elif roll < 0.6 and retired:
                inserts.add(rng.choice(retired))
            else:
                rel = rng.choice(source_rels)
                inserts.add(
                    Fact(
                        rel.name,
                        tuple(
                            _constant(rng, config) for _ in range(rel.arity)
                        ),
                    )
                )
        delta = Delta(inserts=frozenset(inserts), retracts=frozenset(retracts))
        if delta.normalized(current).is_noop():
            continue
        deltas.append(delta)
        for fact in delta.retracts:
            if fact not in delta.inserts and fact in current:
                retired.append(fact)
        current = apply_delta(current, delta)
    return deltas


# -------------------------------------------------------- serialization


def render_update_scenario(scenario: Scenario, deltas: list[Delta]) -> str:
    """Scenario text plus the update stream, one replayable document."""
    return (
        render_scenario(scenario)
        + f"\n{UPDATES_MARKER}\n"
        + render_update_stream(deltas)
    )


def parse_update_scenario(text: str) -> tuple[Scenario, list[Delta]]:
    """Inverse of :func:`render_update_scenario`."""
    if UPDATES_MARKER in text:
        scenario_text, updates_text = text.split(UPDATES_MARKER, 1)
    else:
        scenario_text, updates_text = text, ""
    return parse_scenario(scenario_text), parse_update_stream(updates_text)


def save_update_repro(
    scenario: Scenario,
    deltas: list[Delta],
    directory: str | Path,
    name: str,
) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}{UPDATE_REPRO_SUFFIX}"
    path.write_text(render_update_scenario(scenario, deltas))
    return path


def load_update_corpus(
    directory: str | Path,
) -> list[tuple[Path, Scenario, list[Delta]]]:
    """Every ``*.uprepro`` under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, *parse_update_scenario(path.read_text()))
        for path in sorted(directory.glob(f"*{UPDATE_REPRO_SUFFIX}"))
    ]


# --------------------------------------------------- differential check


def _grounding_keys(data) -> set:
    return {(rule.label, body, head) for rule, body, head in data.groundings}


def _violation_keys(data) -> set:
    return {violation_key(v) for v in data.violations}


def _cluster_partition(analysis) -> set:
    return {
        frozenset(violation_key(v) for v in cluster.violations)
        for cluster in analysis.clusters
    }


def _cluster_envelopes(analysis) -> set:
    return {
        frozenset(cluster.source_envelope) for cluster in analysis.clusters
    }


#: Steps whose largest cluster influences more than this many facts skip
#: the *answer* comparisons (the exchange-state comparisons always run).
#: XR answering is Πᵖ₂-hard, and a rare generated scenario chases a
#: handful of source facts into one giant cluster whose repair program
#: takes the solver hours — per step, per engine, per mode (seed 89:
#: 7 source facts → 159 chased, one cluster, >80 s per certain-mode
#: solve and growing with the stream).  The cap is a pure function of
#: the already-compared state, so both engines skip the same steps and
#: replays stay deterministic; solver-level answer correctness on hard
#: programs is covered per-scenario by the main differential campaign,
#: which solves each such program once instead of ~80 times.
ANSWER_CHECK_INFLUENCE_CAP = 96


def check_update_stream(
    scenario: Scenario,
    deltas: list[Delta],
    config: FuzzConfig = DEFAULT_CONFIG,
) -> list[str]:
    """Differentially replay ``deltas``; returns discrepancy strings.

    One warm incremental engine (session-maintained, cache enabled) versus
    a fresh from-scratch engine per step.  Both engines build their
    exchange with ``config.exchange_strategy``, so with the default the
    delta-chase is validated per step against batch-built adjacency (and
    with ``"tuple"`` against the legacy path).  Stops at the first failing
    step: later steps run on top of diverged state and would only echo it.
    Answer comparisons are skipped on solver-hard steps (see
    :data:`ANSWER_CHECK_INFLUENCE_CAP`); state comparisons never are.
    """
    problems: list[str] = []
    try:
        engine = SegmentaryEngine(
            scenario.mapping,
            scenario.instance.copy(),
            exchange_strategy=config.exchange_strategy,
        )
        engine.exchange()
        session = engine.update_session()
    except Exception as error:  # noqa: BLE001 — a crash is a finding
        return [f"crash building incremental engine: {error!r}"]

    current = scenario.instance.copy()
    try:
        for step, delta in enumerate(deltas):
            try:
                session.apply(delta)
            except Exception as error:  # noqa: BLE001
                problems.append(f"crash at step {step}: {error!r}")
                return problems
            current = apply_delta(current, delta)
            reference = SegmentaryEngine(
                scenario.mapping,
                current.copy(),
                exchange_strategy=config.exchange_strategy,
            )
            try:
                reference.exchange()
                checks = [
                    (
                        "chased",
                        set(engine.data.chased),
                        set(reference.data.chased),
                    ),
                    (
                        "groundings",
                        _grounding_keys(engine.data),
                        _grounding_keys(reference.data),
                    ),
                    (
                        "violations",
                        _violation_keys(engine.data),
                        _violation_keys(reference.data),
                    ),
                    (
                        "cluster-partition",
                        _cluster_partition(engine.analysis),
                        _cluster_partition(reference.analysis),
                    ),
                    (
                        "cluster-envelopes",
                        _cluster_envelopes(engine.analysis),
                        _cluster_envelopes(reference.analysis),
                    ),
                    (
                        "safe-source",
                        set(engine.analysis.safe_source),
                        set(reference.analysis.safe_source),
                    ),
                    (
                        "safe-chased",
                        set(engine.analysis.safe_chased),
                        set(reference.analysis.safe_chased),
                    ),
                ]
                solver_hard = any(
                    len(cluster.influence_ids) > ANSWER_CHECK_INFLUENCE_CAP
                    for cluster in reference.analysis.clusters
                )
                if not solver_hard:
                    checks += [
                        (
                            "certain-answers",
                            engine.answer(scenario.query),
                            reference.answer(scenario.query),
                        ),
                        (
                            "possible-answers",
                            engine.possible_answers(scenario.query),
                            reference.possible_answers(scenario.query),
                        ),
                    ]
                for kind, incremental, scratch in checks:
                    if incremental != scratch:
                        missing = sorted(
                            map(repr, scratch - incremental)
                        )[:3]
                        extra = sorted(map(repr, incremental - scratch))[:3]
                        problems.append(
                            f"{kind} mismatch at step {step}: "
                            f"missing={missing} extra={extra}"
                        )
                if problems:
                    return problems
            finally:
                reference.close()
    finally:
        engine.close()
    return problems


def check_update_seed(
    seed: int,
    config: FuzzConfig = DEFAULT_CONFIG,
    steps: int = 20,
) -> list[str]:
    """Generate scenario + stream for ``seed`` and differentially replay."""
    scenario = random_scenario(seed, config)
    deltas = random_update_stream(seed, scenario, steps, config)
    return check_update_stream(scenario, deltas, config)


# --------------------------------------------------------------- shrink


def shrink_update_stream(
    scenario: Scenario,
    deltas: list[Delta],
    is_failing: Callable[[Scenario, list[Delta]], bool],
    max_rounds: int = 8,
) -> tuple[Scenario, list[Delta]]:
    """Minimize a failing (scenario, stream) pair.

    Round-robin until a fixpoint (or ``max_rounds``): ddmin over the step
    list, then thin each surviving step down fact-by-fact, then ddmin the
    scenario's base facts with the stream pinned (retracts of vanished
    facts normalize to no-ops, so any sub-instance is a valid candidate).
    A predicate crash counts as *not* reproducing, keeping the shrinker
    total.
    """

    def still_fails(candidate: Scenario, stream: list[Delta]) -> bool:
        try:
            return bool(is_failing(candidate, stream))
        except Exception:  # noqa: BLE001 — invalid candidate: not a repro
            return False

    for _ in range(max_rounds):
        before = (len(deltas), sum(
            len(d.inserts) + len(d.retracts) for d in deltas
        ), len(scenario.instance))

        # 1. ddmin over steps.
        granularity = 2
        while len(deltas) >= 2:
            chunk = max(1, len(deltas) // granularity)
            reduced = False
            for offset in range(0, len(deltas), chunk):
                kept = deltas[:offset] + deltas[offset + chunk:]
                if kept and still_fails(scenario, kept):
                    deltas = kept
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if chunk == 1:
                    break
                granularity = min(len(deltas), granularity * 2)

        # 2. Thin individual steps: drop one inserted/retracted fact at a
        # time as long as the stream still fails.
        for index in range(len(deltas)):
            for attr in ("inserts", "retracts"):
                for fact in sorted(getattr(deltas[index], attr), key=repr):
                    slimmed = replace(
                        deltas[index],
                        **{
                            attr: getattr(deltas[index], attr)
                            - frozenset([fact])
                        },
                    )
                    if slimmed.is_noop():
                        continue
                    candidate = (
                        deltas[:index] + [slimmed] + deltas[index + 1:]
                    )
                    if still_fails(scenario, candidate):
                        deltas = candidate

        # 3. ddmin the base instance with the stream pinned.
        facts = sorted(scenario.instance, key=repr)
        granularity = 2
        while len(facts) >= 2:
            chunk = max(1, len(facts) // granularity)
            reduced = False
            for offset in range(0, len(facts), chunk):
                kept = facts[:offset] + facts[offset + chunk:]
                candidate = scenario.with_instance(Instance(kept))
                if still_fails(candidate, deltas):
                    facts = kept
                    scenario = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if chunk == 1:
                    break
                granularity = min(len(facts), granularity * 2)

        after = (len(deltas), sum(
            len(d.inserts) + len(d.retracts) for d in deltas
        ), len(scenario.instance))
        if after == before:
            break
    return scenario, deltas


# ------------------------------------------------------------- campaign


def _update_worker(args: tuple) -> tuple[int, list[str]]:
    seed, config, steps = args
    return seed, check_update_seed(seed, config, steps)


def _iter_update_reports(
    seeds: Iterable[int], config: FuzzConfig, steps: int, jobs: int
) -> Iterable[tuple[int, list[str]]]:
    seeds = list(seeds)
    if jobs > 1:
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # spawn, not fork — same rationale as the main campaign pool.
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                yield from pool.map(
                    _update_worker,
                    [(seed, config, steps) for seed in seeds],
                    chunksize=max(1, len(seeds) // (jobs * 4) or 1),
                )
                return
        except Exception:  # pool unavailable: degrade to sequential
            pass
    for seed in seeds:
        yield _update_worker((seed, config, steps))


def run_update_fuzz(
    seeds: int,
    start: int = 0,
    steps: int = 20,
    config: FuzzConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    shrink: bool = False,
    corpus_dir: str | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzSummary:
    """An update-workload campaign over ``seeds`` consecutive seeds."""
    emit = log or (lambda message: None)
    summary = FuzzSummary(seeds=seeds, start=start)
    started = time.perf_counter()
    done = 0
    seen: set[int] = set()
    for seed, problems in _iter_update_reports(
        range(start, start + seeds), config, steps, jobs
    ):
        if seed in seen:  # pool died mid-iteration; sequential pass repeats
            continue
        seen.add(seed)
        done += 1
        if done % 50 == 0:
            emit(
                f"... {done}/{seeds} update seeds, "
                f"{len(summary.failures)} failure(s)"
            )
        if not problems:
            continue
        scenario = random_scenario(seed, config)
        deltas = random_update_stream(seed, scenario, steps, config)
        failure = FuzzFailure(
            seed=seed,
            discrepancies=problems,
            scenario_text=render_update_scenario(scenario, deltas),
        )
        emit(f"FAIL update seed={seed}: " + "; ".join(problems))
        if shrink:
            scenario, deltas = shrink_update_stream(
                scenario,
                deltas,
                lambda sc, ds: bool(check_update_stream(sc, ds, config)),
            )
            failure.shrunk_text = render_update_scenario(scenario, deltas)
            emit(
                f"  shrunk to {len(scenario.instance)} fact(s), "
                f"{len(deltas)} step(s)"
            )
        if corpus_dir is not None:
            path = save_update_repro(
                scenario, deltas, corpus_dir, name=f"update-seed-{seed}"
            )
            failure.repro_path = str(path)
            emit(f"  repro written to {path}")
        summary.failures.append(failure)
    summary.seconds = time.perf_counter() - started
    return summary


def replay_update_corpus(
    directory: str | Path, config: FuzzConfig = DEFAULT_CONFIG
) -> list[tuple[Path, list[str]]]:
    """Replay every saved update repro; a regression returns problems."""
    return [
        (path, check_update_stream(scenario, deltas, config))
        for path, scenario, deltas in load_update_corpus(directory)
    ]
