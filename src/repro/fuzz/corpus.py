"""The replayable regression corpus.

A corpus is a directory of ``*.repro`` files, each one a serialized
:class:`~repro.fuzz.render.Scenario` (see :mod:`repro.fuzz.render` for the
format).  The checked-in corpus under ``tests/corpus/`` is loaded by the
tier-1 test suite and replayed through the full differential matrix; the
fuzzer appends newly shrunken repros to whatever directory ``--corpus``
names.

:func:`build_default_corpus` regenerates the seeded part of the checked-in
corpus — the historical regression seeds of ``test_property.py`` (via the
frozen :mod:`repro.fuzz.xval` generator), the Figure 1 errata scenario of
DESIGN §7, and one sample per fuzzing profile — so a test can verify the
committed files' provenance byte for byte.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from repro.fuzz.differential import DifferentialReport, run_differential
from repro.fuzz.generator import DEFAULT_CONFIG, FuzzConfig, random_scenario
from repro.fuzz.render import Scenario, parse_scenario, render_scenario
from repro.fuzz.xval import xval_scenario
from repro.parser import parse_mapping, parse_program
from repro.reduction.reduce import reduce_mapping
from repro.relational.instance import Fact, Instance

REPRO_SUFFIX = ".repro"

#: The regression seeds of ``tests/test_xr/test_property.py`` — scenarios
#: that exposed real bugs during development; kept replayable forever.
XVAL_REGRESSION_SEEDS = (0, 7, 19, 42, 123, 271)

#: Seeds serialized as per-profile generator samples (corpus coverage of
#: the freeform and ibench shapes, independent of generator drift).
SAMPLE_SEEDS = {"freeform": (1, 11), "ibench": (3,)}


def scenario_digest(scenario: Scenario) -> str:
    """A short content hash of the canonical serialization."""
    text = render_scenario(scenario)
    return hashlib.sha256(text.encode()).hexdigest()[:10]


def save_repro(
    scenario: Scenario, directory: str | Path, name: str | None = None
) -> Path:
    """Serialize ``scenario`` into ``directory`` and return the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = name if name is not None else f"repro-{scenario_digest(scenario)}"
    path = directory / f"{stem}{REPRO_SUFFIX}"
    path.write_text(render_scenario(scenario))
    return path


def load_repro(path: str | Path) -> Scenario:
    return parse_scenario(Path(path).read_text())


def load_corpus(directory: str | Path) -> list[tuple[Path, Scenario]]:
    """Every ``*.repro`` under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_repro(path))
        for path in sorted(directory.glob(f"*{REPRO_SUFFIX}"))
    ]


def replay(
    scenario: Scenario, config: FuzzConfig = DEFAULT_CONFIG
) -> DifferentialReport:
    """Run one corpus scenario through the differential matrix."""
    return run_differential(scenario, config)


def replay_corpus(
    directory: str | Path, config: FuzzConfig = DEFAULT_CONFIG
) -> list[tuple[Path, DifferentialReport]]:
    return [
        (path, replay(scenario, config))
        for path, scenario in load_corpus(directory)
    ]


# ------------------------------------------------ golden answer records

#: The checked-in golden-answer file, recorded on the pre-interning code
#: path (PR 3) and replayed against every later rewrite of the exchange /
#: program-build pipeline.
GOLDEN_ANSWERS_FILE = "golden_answers.json"


def _answer_rows(answers) -> list[str]:
    """A stable fingerprint of an answer set: sorted reprs of its rows."""
    return sorted(repr(tuple(row)) for row in answers)


def scenario_answers(scenario: Scenario) -> dict[str, list[str]]:
    """Answer fingerprints of one scenario across the engine matrix.

    Covers both program encodings and both reasoning modes so a golden
    file pins the full deterministic pipeline (exchange, envelopes,
    program build, solving) — not just the default configuration.
    """
    from repro.xr.monolithic import MonolithicEngine
    from repro.xr.segmentary import SegmentaryEngine

    reduced = reduce_mapping(scenario.mapping)
    out: dict[str, list[str]] = {}
    segmentary = SegmentaryEngine(reduced, scenario.instance)
    try:
        out["segmentary_certain"] = _answer_rows(segmentary.answer(scenario.query))
        out["segmentary_possible"] = _answer_rows(
            segmentary.possible_answers(scenario.query)
        )
    finally:
        segmentary.close()
    monolithic = MonolithicEngine(reduced, scenario.instance)
    out["monolithic_certain"] = _answer_rows(monolithic.answer(scenario.query))
    figure1 = MonolithicEngine(reduced, scenario.instance, encoding="figure1")
    out["figure1_certain"] = _answer_rows(figure1.answer(scenario.query))
    return out


def record_golden_answers(directory: str | Path) -> Path:
    """(Re)record ``golden_answers.json`` for every repro in ``directory``.

    Only run this deliberately (it *defines* the expected answers); the
    regression test replays the corpus against the committed file.
    """
    import json

    directory = Path(directory)
    goldens = {
        path.stem: scenario_answers(scenario)
        for path, scenario in load_corpus(directory)
    }
    target = directory / GOLDEN_ANSWERS_FILE
    target.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    return target


def load_golden_answers(directory: str | Path) -> dict[str, dict[str, list[str]]]:
    import json

    return json.loads((Path(directory) / GOLDEN_ANSWERS_FILE).read_text())


# ------------------------------------------------ golden metric records

#: The checked-in golden-metrics file: the deterministic observability
#: counters (chase rounds, groundings, clusters, ground rules, cache
#: traffic) of a fixed scenario pair, asserted bit-identical by the
#: regression test so pipeline rewrites cannot silently change how much
#: work the engine does — even when the answers stay right.
GOLDEN_METRICS_FILE = "golden_metrics.json"

#: The corpus scenarios pinned by the golden-metrics record: the
#: hand-built DESIGN §7 case (solver-decided candidates, one cluster)
#: and a generator sample with egd violations but no solves — together
#: they cover the cached, solved, safe, and violation-only code paths.
GOLDEN_METRICS_SCENARIOS = ("figure1-errata", "ibench-seed-0003")

#: Counter families included in the golden record.  Solver search
#: statistics (decisions, conflicts, restarts) and timing histograms are
#: deliberately excluded: they are answer-neutral but can vary with hash
#: seeds and clause ordering, while these structural counters are
#: bit-identical across runs, platforms, and ``PYTHONHASHSEED``.
GOLDEN_METRIC_PREFIXES = ("cache_", "exchange_", "queries_", "query_")


def scenario_metrics(scenario: Scenario) -> dict[str, int]:
    """The deterministic observability counters of one scenario.

    Runs the segmentary engine under a live recorder, answering the
    query in certain then possible mode, and returns the structural
    counter subset selected by :data:`GOLDEN_METRIC_PREFIXES`.
    """
    from repro.obs.recorder import Recorder
    from repro.xr.segmentary import SegmentaryEngine

    obs = Recorder.create()
    reduced = reduce_mapping(scenario.mapping)
    with SegmentaryEngine(reduced, scenario.instance, obs=obs) as engine:
        engine.answer(scenario.query)
        engine.possible_answers(scenario.query)
    return {
        name: value
        for name, value in obs.metrics.counter_values().items()
        if name.startswith(GOLDEN_METRIC_PREFIXES)
    }


def record_golden_metrics(directory: str | Path) -> Path:
    """(Re)record ``golden_metrics.json`` for the pinned scenario pair.

    Only run this deliberately (it *defines* the expected counters); the
    regression test replays the scenarios against the committed file.
    """
    import json

    directory = Path(directory)
    goldens = {
        name: scenario_metrics(load_repro(directory / f"{name}{REPRO_SUFFIX}"))
        for name in GOLDEN_METRICS_SCENARIOS
    }
    target = directory / GOLDEN_METRICS_FILE
    target.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    return target


def load_golden_metrics(directory: str | Path) -> dict[str, dict[str, int]]:
    import json

    return json.loads((Path(directory) / GOLDEN_METRICS_FILE).read_text())


# ------------------------------------------------- the checked-in corpus


def _figure1_errata_scenario() -> Scenario:
    """The DESIGN §7 scenario on which the literal Figure 1 encoding
    over-approximates XR-Certain (two repairs, empty certain answer)."""
    mapping = parse_mapping(
        """
        SOURCE R/2, S/2. TARGET U/2, T/2.
        R(x, y), R(z, x) -> U(y, z).
        R(x, x) -> T(x, x).
        R(x, z), S(x, z) -> U(z, z).
        U(y, x) -> U(x, x).
        U(x, u), T(x, z) -> z = u.
        """
    )
    instance = Instance(
        [
            Fact("R", ("b", "c")),
            Fact("R", ("c", "c")),
            Fact("S", ("b", "a")),
            Fact("S", ("c", "c")),
        ]
    )
    query = parse_program("q() :- U(y, z), U(x, x).")
    return Scenario(mapping, instance, query, label="figure1 errata (DESIGN §7)")


def default_corpus_entries() -> dict[str, Scenario]:
    """Name → scenario for the regenerable part of ``tests/corpus/``."""
    entries: dict[str, Scenario] = {}
    for seed in XVAL_REGRESSION_SEEDS:
        entries[f"xval-seed-{seed:04d}"] = xval_scenario(seed)
    entries["figure1-errata"] = _figure1_errata_scenario()
    for profile, seeds in SAMPLE_SEEDS.items():
        config = FuzzConfig(profile=profile)
        for seed in seeds:
            entries[f"{profile}-seed-{seed:04d}"] = random_scenario(seed, config)
    return entries


def build_default_corpus(directory: str | Path) -> list[Path]:
    """Write the regenerable corpus entries into ``directory``."""
    return [
        save_repro(scenario, directory, name=name)
        for name, scenario in sorted(default_corpus_entries().items())
    ]
