"""Automatic failure minimization (delta debugging).

Given a failing scenario and a predicate ``is_failing``, the shrinker
greedily removes source facts (classic ddmin with complements), then
dependencies, then query disjuncts / body atoms / head variables, and
repeats the whole cycle until a fixpoint.  Every candidate is rebuilt
through the regular constructors, so anything structurally invalid (an
unsafe query head, a tgd over a vanished relation) is simply skipped
rather than special-cased.  Finally the schemas are pruned down to the
relations the minimal repro still mentions.

The predicate is arbitrary — the fuzzer passes "the differential report
still has discrepancies", tests pass synthetic predicates — and is always
wrapped: a predicate that *crashes* on a candidate counts as "still
failing" when the crash is what we are chasing is the caller's decision;
here a crash counts as *not* reproducing, keeping the shrinker total.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.fuzz.render import Query, Scenario
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.relational.schema import Schema

Predicate = Callable[[Scenario], bool]


def _still_fails(predicate: Predicate, scenario: Scenario) -> bool:
    try:
        return bool(predicate(scenario))
    except Exception:  # noqa: BLE001 — invalid candidate: not a repro
        return False


# ----------------------------------------------------------------- facts


def _shrink_facts(scenario: Scenario, predicate: Predicate) -> Scenario:
    """ddmin over the source facts: try complements of n chunks, n doubling."""
    facts = sorted(scenario.instance, key=repr)
    if facts:
        empty = scenario.with_instance(Instance())
        if _still_fails(predicate, empty):
            return empty
    granularity = 2
    while len(facts) >= 2:
        chunk = max(1, len(facts) // granularity)
        reduced = False
        for offset in range(0, len(facts), chunk):
            kept = facts[:offset] + facts[offset + chunk:]
            candidate = scenario.with_instance(Instance(kept))
            if _still_fails(predicate, candidate):
                facts = kept
                scenario = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(facts), granularity * 2)
    return scenario


# ---------------------------------------------------------- dependencies


def _with_dependencies(
    scenario: Scenario,
    st_tgds: Sequence[TGD],
    target_tgds: Sequence[TGD],
    target_egds: Sequence[EGD],
) -> Scenario:
    mapping = scenario.mapping
    return scenario.with_mapping(
        SchemaMapping(
            mapping.source, mapping.target, st_tgds, target_tgds, target_egds
        )
    )


def _shrink_dependencies(scenario: Scenario, predicate: Predicate) -> Scenario:
    changed = True
    while changed:
        changed = False
        mapping = scenario.mapping
        groups = {
            "st": list(mapping.st_tgds),
            "tt": list(mapping.target_tgds),
            "egd": list(mapping.target_egds),
        }
        for key, deps in groups.items():
            for index in range(len(deps)):
                trimmed = dict(groups)
                trimmed[key] = deps[:index] + deps[index + 1:]
                candidate = _with_dependencies(
                    scenario, trimmed["st"], trimmed["tt"], trimmed["egd"]
                )
                if _still_fails(predicate, candidate):
                    scenario = candidate
                    changed = True
                    break
            if changed:
                break
    return scenario


# --------------------------------------------------------------- queries


def _cq_variants(cq: ConjunctiveQuery):
    """Smaller CQs: drop a body atom (re-securing the head), drop a head var."""
    for index in range(len(cq.body)):
        body = cq.body[:index] + cq.body[index + 1:]
        if not body:
            continue
        remaining = set().union(*(a.variables() for a in body))
        head = [v for v in cq.head_vars if v in remaining]
        yield ConjunctiveQuery(head, body, name=cq.name)
    for index in range(len(cq.head_vars)):
        head = cq.head_vars[:index] + cq.head_vars[index + 1:]
        yield ConjunctiveQuery(head, cq.body, name=cq.name)


def _query_variants(query: Query):
    if isinstance(query, UnionOfConjunctiveQueries):
        disjuncts = query.disjuncts
        if len(disjuncts) > 1:
            for index in range(len(disjuncts)):
                kept = disjuncts[:index] + disjuncts[index + 1:]
                if len(kept) == 1:
                    yield kept[0]
                else:
                    yield UnionOfConjunctiveQueries(kept, name=query.name)
        else:
            yield from _cq_variants(disjuncts[0])
        return
    yield from _cq_variants(query)


def _shrink_query(scenario: Scenario, predicate: Predicate) -> Scenario:
    changed = True
    while changed:
        changed = False
        for variant in _query_variants(scenario.query):
            candidate = scenario.with_query(variant)
            if _still_fails(predicate, candidate):
                scenario = candidate
                changed = True
                break
    return scenario


# ---------------------------------------------------------------- schema


def _used_relations(scenario: Scenario) -> set[str]:
    used: set[str] = set()
    mapping = scenario.mapping
    for dep in (*mapping.st_tgds, *mapping.target_tgds, *mapping.target_egds):
        used |= dep.body_relations()
        used |= getattr(dep, "head_relations", lambda: set())()
    for fact in scenario.instance:
        used.add(fact.relation)
    query = scenario.query
    disjuncts = (
        query.disjuncts
        if isinstance(query, UnionOfConjunctiveQueries)
        else (query,)
    )
    for disjunct in disjuncts:
        used |= {atom.relation for atom in disjunct.body}
    return used


def _prune_schemas(scenario: Scenario, predicate: Predicate) -> Scenario:
    """Drop relations the minimal repro no longer mentions (cosmetic, but
    it keeps serialized repros readable); kept only if still failing."""
    used = _used_relations(scenario)
    mapping = scenario.mapping
    source = Schema(r for r in mapping.source if r.name in used)
    target = Schema(r for r in mapping.target if r.name in used)
    if len(source) == len(mapping.source) and len(target) == len(mapping.target):
        return scenario
    try:
        candidate = scenario.with_mapping(
            SchemaMapping(
                source,
                target,
                mapping.st_tgds,
                mapping.target_tgds,
                mapping.target_egds,
            )
        )
    except Exception:  # noqa: BLE001
        return scenario
    return candidate if _still_fails(predicate, candidate) else scenario


# ----------------------------------------------------------------- entry


def shrink_scenario(
    scenario: Scenario,
    is_failing: Predicate,
    max_rounds: int = 8,
) -> Scenario:
    """Minimize ``scenario`` while ``is_failing`` keeps holding.

    Returns the smallest scenario found (the input itself when it does not
    fail, so callers need no special case).  Deterministic: same scenario
    and predicate, same minimal repro.
    """
    if not _still_fails(is_failing, scenario):
        return scenario
    for _ in range(max_rounds):
        before = (
            len(scenario.instance),
            len(scenario.mapping.st_tgds),
            len(scenario.mapping.target_tgds),
            len(scenario.mapping.target_egds),
            scenario.query.__repr__(),
        )
        scenario = _shrink_facts(scenario, is_failing)
        scenario = _shrink_dependencies(scenario, is_failing)
        scenario = _shrink_query(scenario, is_failing)
        after = (
            len(scenario.instance),
            len(scenario.mapping.st_tgds),
            len(scenario.mapping.target_tgds),
            len(scenario.mapping.target_egds),
            scenario.query.__repr__(),
        )
        if after == before:
            break
    return _prune_schemas(scenario, is_failing)
