"""Cross-engine differential checking.

:func:`run_differential` executes one scenario through every sound engine
configuration and collects *discrepancies*:

- **certain-mismatch** — a certain-answer set differs from the baseline
  (the Definition 1 oracle when the instance is small enough, else the
  monolithic Theorem 2 engine);
- **possible-mismatch** — an XR-Possible answer set differs;
- **figure1-missing** — the literal Figure 1 encoding returned *fewer*
  answers than the baseline.  Figure 1 is known to over-approximate
  XR-Certain (it can miss repairs — DESIGN §7), so ``baseline ⊆ figure1``
  is the strongest sound cross-check for it; a missing answer is a bug.
  In the extreme the encoding misses *every* repair and its program has
  no stable model at all — that outcome is recorded as the documented
  erratum (the check is vacuous), not as a crash;
- **warm-cache-mismatch** — answering the same query twice on one engine
  (cache cold, then warm) changed the answers;
- **certain-not-possible** — an answer certain but not possible;
- **candidate-invariant** — a certain answer that is not even a candidate
  answer, i.e. not a grounding of the reduced query over the reduced
  mapping's quasi-solution (certain ⊆ candidates, §6.4);
- **crash** — an engine raised.

Engine matrix for the segmentary engine: SequentialExecutor vs a shared
ParallelExecutor (``jobs`` ∈ {1, N}), cache cold vs warm vs disabled, and
the incremental family strategy (the default, exercised by every axis
above) vs the legacy per-signature strategy (``solve_strategy=
"per-signature"``, certain and possible), and the exchange evaluation
strategy (every engine runs on ``config.exchange_strategy``; one extra
segmentary run forces the opposite of it, so the batch set-at-a-time and
tuple-at-a-time exchange paths are cross-checked on every scenario).  All
knobs are answer-neutral by design; the fuzzer is the enforcement.

Two difficulty gates keep worst-case scenarios from stalling a campaign:
the Definition 1 oracle only runs up to ``oracle_max_facts`` source facts
(repair enumeration is exponential in the instance), and the two checks
that *enumerate stable models* of the one big monolithic program — the
Figure 1 encoding and the monolithic possible-answer pass — only run up
to ``enumerative_limit`` chase groundings (model enumeration is
exponential in the program).  The repair-encoding, segmentary, cache and
parallel agreement checks always run.

:func:`run_fuzz` drives a whole campaign — seeded scenario generation,
optional multiprocess fan-out over seeds, delta-debugging shrink of any
failure, and serialization of minimal repros into a corpus directory.
"""

from __future__ import annotations

import atexit
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from repro.fuzz.generator import DEFAULT_CONFIG, FuzzConfig, random_scenario
from repro.fuzz.render import Scenario, render_scenario
from repro.reduction.reduce import reduce_mapping
from repro.runtime.executor import SolveExecutor, make_executor
from repro.xr.exchange import build_exchange_data
from repro.xr.monolithic import MonolithicEngine
from repro.xr.oracle import xr_certain_oracle, xr_possible_oracle
from repro.xr.queries import answers_from_facts, ground_query
from repro.xr.segmentary import SegmentaryEngine


@dataclass(frozen=True)
class Discrepancy:
    """One observed disagreement between two engine configurations."""

    kind: str
    left: str
    right: str
    detail: str = ""

    def __str__(self) -> str:
        tail = f": {self.detail}" if self.detail else ""
        return f"[{self.kind}] {self.left} vs {self.right}{tail}"


@dataclass
class DifferentialReport:
    """Everything one :func:`run_differential` call observed."""

    scenario: Scenario
    discrepancies: list[Discrepancy] = field(default_factory=list)
    certain: dict[str, frozenset] = field(default_factory=dict)
    possible: dict[str, frozenset] = field(default_factory=dict)
    engines: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies


def _fmt(answers: Iterable[tuple]) -> str:
    rows = sorted(answers, key=repr)
    if len(rows) > 6:
        rows = rows[:6] + ["..."]  # type: ignore[list-item]
    return "{" + ", ".join(map(repr, rows)) + "}"


# A per-process parallel executor, shared across scenarios: spawning a
# pool per differential run would dominate the campaign's wall clock.
_SHARED_PARALLEL: SolveExecutor | None = None


def _shared_parallel_executor(jobs: int) -> SolveExecutor:
    global _SHARED_PARALLEL
    if _SHARED_PARALLEL is None:
        _SHARED_PARALLEL = make_executor(max(jobs, 2), min_batch=1)
        atexit.register(close_shared_executor)
    return _SHARED_PARALLEL


def close_shared_executor() -> None:
    """Tear down the per-process shared ParallelExecutor (idempotent)."""
    global _SHARED_PARALLEL
    if _SHARED_PARALLEL is not None:
        _SHARED_PARALLEL.close()
        _SHARED_PARALLEL = None


def run_differential(
    scenario: Scenario,
    config: FuzzConfig = DEFAULT_CONFIG,
    executor: SolveExecutor | None = None,
) -> DifferentialReport:
    """Run ``scenario`` through the engine matrix and compare everything."""
    report = DifferentialReport(scenario=scenario)
    mapping, instance, query = scenario.mapping, scenario.instance, scenario.query

    def run(name: str, kind: str, call: Callable[[], set]) -> frozenset | None:
        try:
            answers = frozenset(call())
        except Exception as error:  # noqa: BLE001 — a crash IS a finding
            report.discrepancies.append(
                Discrepancy("crash", name, "-", f"{type(error).__name__}: {error}")
            )
            return None
        report.engines.append(name)
        (report.certain if kind == "certain" else report.possible)[name] = answers
        return answers

    # The reduced exchange data serves double duty: it sizes the scenario
    # for the difficulty gate (``enumerative_limit``) and feeds the
    # candidate-answer invariant at the end.  A failure here is not
    # swallowed silently — the engines below hit the same code and crash.
    reduced = data = None
    try:
        reduced = reduce_mapping(mapping)
        data = build_exchange_data(
            reduced.gav, instance, strategy=config.exchange_strategy
        )
    except Exception:  # noqa: BLE001 — reported via the engine runs
        pass
    heavy = data is None or len(data.groundings) > config.enumerative_limit

    with_oracle = config.use_oracle and len(instance) <= config.oracle_max_facts
    if with_oracle:
        run("oracle", "certain", lambda: xr_certain_oracle(query, instance, mapping))
        if config.check_possible:
            run(
                "oracle-possible",
                "possible",
                lambda: xr_possible_oracle(query, instance, mapping),
            )

    monolithic = MonolithicEngine(
        mapping, instance, exchange_strategy=config.exchange_strategy
    )
    run("monolithic", "certain", lambda: monolithic.answer(query))
    if config.check_possible and not heavy:
        run(
            "monolithic-possible",
            "possible",
            lambda: monolithic.possible_answers(query),
        )

    figure1: frozenset | None = None
    if config.check_figure1 and not heavy:
        # The literal Figure 1 program misses repairs (DESIGN §7).  When it
        # misses *every* repair it has no stable model at all and cautious
        # consequence is vacuous — the erratum in its total form, observed
        # on real fuzz seeds.  That outcome is documented behavior, not a
        # crash; only a *missing answer* (checked below) is a bug.
        fig_engine = MonolithicEngine(
            mapping,
            instance,
            encoding="figure1",
            exchange_strategy=config.exchange_strategy,
        )
        try:
            figure1 = frozenset(fig_engine.answer(query))
        except RuntimeError as error:
            if "no stable model" not in str(error):
                raise
            figure1 = None
        except Exception as error:  # noqa: BLE001
            report.discrepancies.append(
                Discrepancy(
                    "crash", "monolithic-figure1", "-",
                    f"{type(error).__name__}: {error}",
                )
            )
        else:
            if figure1 is not None:
                report.engines.append("monolithic-figure1")
                report.certain["monolithic-figure1"] = figure1

    with SegmentaryEngine(
        mapping, instance, cache=True, exchange_strategy=config.exchange_strategy
    ) as cached:
        cold = run("segmentary-cold", "certain", lambda: cached.answer(query))
        warm = run("segmentary-warm", "certain", lambda: cached.answer(query))
        if config.check_possible:
            run(
                "segmentary-possible",
                "possible",
                lambda: cached.possible_answers(query),
            )

    with SegmentaryEngine(
        mapping, instance, cache=False, exchange_strategy=config.exchange_strategy
    ) as nocache:
        run("segmentary-nocache", "certain", lambda: nocache.answer(query))

    # The exchange-strategy axis: everything above ran on
    # ``config.exchange_strategy``; this run forces the *other* evaluation
    # path (batch set-at-a-time vs tuple-at-a-time nested loops), so the
    # two chase/grounding/violation implementations are differentially
    # compared on every scenario.
    other_strategy = "tuple" if config.exchange_strategy == "batch" else "batch"
    with SegmentaryEngine(
        mapping, instance, cache=False, exchange_strategy=other_strategy
    ) as crossed:
        run(
            f"segmentary-{other_strategy}-exchange",
            "certain",
            lambda: crossed.answer(query),
        )
        if config.check_possible:
            run(
                f"segmentary-{other_strategy}-exchange-possible",
                "possible",
                lambda: crossed.possible_answers(query),
            )

    # The strategy axis: every segmentary run above uses the default
    # incremental family path; this one forces the legacy per-signature
    # path, so the two solve strategies are differentially compared on
    # every scenario (certain and possible).
    with SegmentaryEngine(
        mapping,
        instance,
        cache=False,
        solve_strategy="per-signature",
        exchange_strategy=config.exchange_strategy,
    ) as legacy:
        run(
            "segmentary-per-signature",
            "certain",
            lambda: legacy.answer(query),
        )
        if config.check_possible:
            run(
                "segmentary-per-signature-possible",
                "possible",
                lambda: legacy.possible_answers(query),
            )

    if config.check_parallel:
        # The engine does not own the shared executor, so closing the
        # engine leaves the pool alive for the next scenario.
        with SegmentaryEngine(
            mapping,
            instance,
            executor=executor or _shared_parallel_executor(config.parallel_jobs),
            cache=False,
            exchange_strategy=config.exchange_strategy,
        ) as parallel_engine:
            run(
                "segmentary-parallel",
                "certain",
                lambda: parallel_engine.answer(query),
            )

    # ----------------------------------------------------------- compare

    # ``monolithic-figure1`` is checked one-sidedly below, never by equality.
    comparable = {
        name: answers
        for name, answers in report.certain.items()
        if name != "monolithic-figure1"
    }
    baseline_name = "oracle" if "oracle" in comparable else "monolithic"
    baseline = comparable.get(baseline_name)
    if baseline is not None:
        for name, answers in comparable.items():
            if name != baseline_name and answers != baseline:
                report.discrepancies.append(
                    Discrepancy(
                        "certain-mismatch",
                        baseline_name,
                        name,
                        f"{_fmt(baseline)} != {_fmt(answers)}",
                    )
                )
        if figure1 is not None and not baseline <= figure1:
            report.discrepancies.append(
                Discrepancy(
                    "figure1-missing",
                    baseline_name,
                    "monolithic-figure1",
                    f"missing {_fmt(baseline - figure1)} (figure1 may only "
                    "over-approximate)",
                )
            )

    if cold is not None and warm is not None and cold != warm:
        report.discrepancies.append(
            Discrepancy(
                "warm-cache-mismatch",
                "segmentary-cold",
                "segmentary-warm",
                f"{_fmt(cold)} != {_fmt(warm)}",
            )
        )

    if report.possible:
        possible_values = list(report.possible.items())
        first_name, first = possible_values[0]
        for name, answers in possible_values[1:]:
            if answers != first:
                report.discrepancies.append(
                    Discrepancy(
                        "possible-mismatch",
                        first_name,
                        name,
                        f"{_fmt(first)} != {_fmt(answers)}",
                    )
                )
        if baseline is not None and not baseline <= first:
            report.discrepancies.append(
                Discrepancy(
                    "certain-not-possible",
                    baseline_name,
                    first_name,
                    f"certain {_fmt(baseline - first)} not possible",
                )
            )

    if baseline is not None and reduced is not None and data is not None:
        try:
            # Candidate answers: groundings of the (reduced) query over the
            # quasi-solution — the same notion §6.4 starts from.  The plain
            # tgd-only chase would be wrong here: egds can equate nulls
            # with constants, creating certain answers it never exhibits.
            groundings = ground_query(reduced.rewrite(query), data.chased)
            candidates = frozenset(
                answers_from_facts({cand for cand, _support in groundings})
            )
            if not baseline <= candidates:
                report.discrepancies.append(
                    Discrepancy(
                        "candidate-invariant",
                        baseline_name,
                        "chase-candidates",
                        f"certain {_fmt(baseline - candidates)} is not even a "
                        "candidate answer",
                    )
                )
        except Exception as error:  # noqa: BLE001
            report.discrepancies.append(
                Discrepancy(
                    "crash", "chase-candidates", "-",
                    f"{type(error).__name__}: {error}",
                )
            )

    return report


# -------------------------------------------------------------- campaign


@dataclass
class FuzzFailure:
    """One failing seed: the original scenario and its shrunken repro."""

    seed: int
    discrepancies: list[str]
    scenario_text: str
    shrunk_text: str | None = None
    repro_path: str | None = None


@dataclass
class FuzzSummary:
    """The outcome of a fuzzing campaign."""

    seeds: int
    start: int
    failures: list[FuzzFailure] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def check_seed(
    seed: int,
    config: FuzzConfig = DEFAULT_CONFIG,
    executor: SolveExecutor | None = None,
) -> DifferentialReport:
    """Generate the scenario for ``seed`` and run the differential matrix.

    With ``config.check_faults`` the fault-injection differential
    (:mod:`repro.fuzz.faults`) runs after the clean matrix: seeded worker
    crashes and hangs, checking that retries recover exactly and that
    budget-degraded answers bracket the exact ones.
    """
    scenario = random_scenario(seed, config)
    report = run_differential(scenario, config, executor)
    if config.check_faults:
        from repro.fuzz.faults import run_fault_check

        report.discrepancies.extend(run_fault_check(scenario, config, seed=seed))
    return report


def _worker_check(args: tuple) -> tuple[int, list[str]]:
    seed, config = args[0], args[1]
    pooled = len(args) > 2 and args[2]
    if pooled and config.check_parallel:
        # Inside a campaign pool worker the solve executor must be
        # per-call and explicitly closed before the task returns: an
        # inner process pool torn down at *worker exit* (atexit) wedges
        # the outer pool's shutdown for good (observed on CPython 3.11).
        # The fault check manages its own executors the same way.
        with make_executor(max(config.parallel_jobs, 2), min_batch=1) as ex:
            report = check_seed(seed, config, ex)
    else:
        report = check_seed(seed, config)
    return seed, [str(d) for d in report.discrepancies]


def _iter_reports(
    seeds: Iterable[int], config: FuzzConfig, jobs: int
) -> Iterable[tuple[int, list[str]]]:
    seeds = list(seeds)
    if jobs > 1:
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # ``spawn``, not fork: each campaign worker creates its *own*
            # inner solve pool for the segmentary-parallel axis, and a
            # fork()ed worker inheriting the outer pool's queue threads
            # mid-acquisition deadlocks when it forks again.  Spawned
            # workers start from a clean interpreter.
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                yield from pool.map(
                    _worker_check,
                    [(seed, config, True) for seed in seeds],
                    chunksize=max(1, len(seeds) // (jobs * 4) or 1),
                )
                return
        except Exception:  # pool unavailable (sandbox, spawn failure): degrade
            pass
    for seed in seeds:
        yield _worker_check((seed, config))


def run_fuzz(
    seeds: int,
    start: int = 0,
    config: FuzzConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    shrink: bool = False,
    corpus_dir: str | None = None,
    log: Callable[[str], None] | None = None,
) -> FuzzSummary:
    """A fuzzing campaign over ``seeds`` consecutive seeds.

    Failures are re-derived deterministically from their seed, optionally
    shrunk to a minimal repro, and (with ``corpus_dir``) serialized for
    replay.  Returns a :class:`FuzzSummary`; zero failures means every
    engine configuration agreed on every scenario.
    """
    emit = log or (lambda message: None)
    summary = FuzzSummary(seeds=seeds, start=start)
    started = time.perf_counter()
    done = 0
    seen: set[int] = set()
    for seed, problems in _iter_reports(range(start, start + seeds), config, jobs):
        if seed in seen:  # pool died mid-iteration; sequential pass repeats
            continue
        seen.add(seed)
        done += 1
        if done % 50 == 0:
            emit(f"... {done}/{seeds} seeds, {len(summary.failures)} failure(s)")
        if not problems:
            continue
        scenario = random_scenario(seed, config)
        failure = FuzzFailure(
            seed=seed,
            discrepancies=problems,
            scenario_text=render_scenario(scenario),
        )
        emit(f"FAIL seed={seed}: " + "; ".join(problems))
        if shrink:
            from repro.fuzz.shrink import shrink_scenario

            # No pools and no injected faults while shrinking: the shrink
            # predicate re-runs the matrix hundreds of times, and fault
            # runs both cost a deadline each and depend on the seed (the
            # shrunk scenario no longer corresponds to one).
            shrink_config = replace(config, check_parallel=False, check_faults=False)
            minimal = shrink_scenario(
                scenario,
                lambda s: not run_differential(s, shrink_config).ok,
            )
            failure.shrunk_text = render_scenario(minimal)
            emit(
                f"  shrunk to {len(minimal.instance)} fact(s), "
                f"{len(minimal.mapping.st_tgds) + len(minimal.mapping.target_tgds)}"
                f" tgd(s), {len(minimal.mapping.target_egds)} egd(s)"
            )
            scenario = minimal
        if corpus_dir is not None:
            from repro.fuzz.corpus import save_repro

            path = save_repro(scenario, corpus_dir, name=f"fuzz-seed-{seed}")
            failure.repro_path = str(path)
            emit(f"  repro written to {path}")
        summary.failures.append(failure)
    summary.seconds = time.perf_counter() - started
    return summary
