"""Scenario objects and their serialization into the parser's text syntax.

A :class:`Scenario` bundles the three inputs of a differential run — a
schema mapping, a source instance, and a (U)CQ — and round-trips through
the text syntax of :mod:`repro.parser`:

- :func:`render_mapping` / :func:`render_instance` / :func:`render_query`
  emit exactly the syntax ``parse_mapping`` / ``parse_instance`` /
  ``parse_program`` accept, so a shrunken repro is directly usable with
  ``python -m repro answer -m ... -d ... -q ...``;
- :func:`render_scenario` / :func:`parse_scenario` combine the three
  sections into one ``.repro`` file, separated by comment markers the
  lexer already skips.

Rendering is canonical (facts sorted, no labels), so two structurally
equal scenarios produce byte-identical text — the property the corpus
dedup and the round-trip tests rely on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Union

from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.parser import parse_instance, parse_mapping, parse_program
from repro.relational.instance import Fact, Instance
from repro.relational.queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
)
from repro.relational.terms import Const, Variable

Query = Union[ConjunctiveQuery, UnionOfConjunctiveQueries]

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_NUMBER = re.compile(r"-?\d+(\.\d+)?\Z")
_RESERVED = {"SOURCE", "TARGET"}

MAPPING_MARKER = "% --- mapping ---"
DATA_MARKER = "% --- data ---"
QUERY_MARKER = "% --- query ---"


class RenderError(ValueError):
    """Raised when an object cannot be expressed in the text syntax."""


# ------------------------------------------------------------------ terms


def _check_ident(name: str, role: str) -> str:
    if not _IDENT.match(name) or name in _RESERVED or name == "_":
        raise RenderError(f"{role} {name!r} is not a renderable identifier")
    return name


def render_value(value: Any) -> str:
    """A constant value as instance-file syntax (quoted string or number)."""
    if isinstance(value, bool):
        raise RenderError(f"boolean constant {value!r} has no text syntax")
    if isinstance(value, (int, float)):
        text = repr(value)
        if not _NUMBER.match(text):
            raise RenderError(f"numeric constant {value!r} has no text syntax")
        return text
    if isinstance(value, str):
        if "\\" in value or "\n" in value:
            raise RenderError(f"string constant {value!r} has no text syntax")
        return "'" + value.replace("'", "\\'") + "'"
    raise RenderError(f"value {value!r} is not a renderable constant")


def render_term(term: Any) -> str:
    """A dependency/query term: a variable name or a constant literal."""
    if isinstance(term, Variable):
        return _check_ident(term.name, "variable")
    if isinstance(term, Const):
        return render_value(term.value)
    raise RenderError(f"term {term!r} has no text syntax (skolem term?)")


def render_atom(atom: Atom) -> str:
    _check_ident(atom.relation, "relation")
    return f"{atom.relation}({', '.join(render_term(t) for t in atom.terms)})"


# ---------------------------------------------------------- dependencies


def render_tgd(tgd: TGD) -> str:
    body = ", ".join(render_atom(a) for a in tgd.body)
    head = ", ".join(render_atom(a) for a in tgd.head)
    return f"{body} -> {head}."


def render_egd(egd: EGD) -> str:
    if egd.constants_only or egd.symmetric:
        raise RenderError(
            f"{egd.label}: reduction-internal egd flags have no text syntax"
        )
    body = ", ".join(render_atom(a) for a in egd.body)
    return f"{body} -> {render_term(egd.lhs)} = {render_term(egd.rhs)}."


def render_dependency(dep: TGD | EGD) -> str:
    return render_egd(dep) if isinstance(dep, EGD) else render_tgd(dep)


# --------------------------------------------------------------- queries


def render_query(query: Query) -> str:
    """One ``name(vars) :- atoms.`` rule per disjunct (``parse_program``)."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return "\n".join(render_query(d) for d in query.disjuncts)
    if query.inequalities:
        raise RenderError("query inequalities have no text syntax")
    _check_ident(query.name, "query name")
    head = ", ".join(_check_ident(v.name, "variable") for v in query.head_vars)
    body = ", ".join(render_atom(a) for a in query.body)
    return f"{query.name}({head}) :- {body}."


# --------------------------------------------------------------- mapping


def _render_decl(keyword: str, relations) -> list[str]:
    symbols = sorted(relations, key=lambda r: r.name)
    if not symbols:
        return []
    decl = ", ".join(f"{_check_ident(r.name, 'relation')}/{r.arity}" for r in symbols)
    return [f"{keyword} {decl}."]


def render_mapping(mapping: SchemaMapping) -> str:
    lines = _render_decl("SOURCE", mapping.source)
    lines += _render_decl("TARGET", mapping.target)
    if not lines:
        raise RenderError("a mapping with two empty schemas has no text syntax")
    lines += [render_tgd(t) for t in mapping.st_tgds]
    lines += [render_tgd(t) for t in mapping.target_tgds]
    lines += [render_egd(e) for e in mapping.target_egds]
    return "\n".join(lines)


def render_instance(instance: Instance) -> str:
    lines = []
    for fact in sorted(instance, key=repr):
        _check_ident(fact.relation, "relation")
        args = ", ".join(render_value(v) for v in fact.args)
        lines.append(f"{fact.relation}({args}).")
    return "\n".join(lines)


# -------------------------------------------------------------- scenarios


@dataclass(frozen=True)
class Scenario:
    """One differential-fuzzing input: mapping + source instance + query."""

    mapping: SchemaMapping
    instance: Instance
    query: Query
    label: str = ""

    def with_instance(self, instance: Instance) -> "Scenario":
        return replace(self, instance=instance)

    def with_mapping(self, mapping: SchemaMapping) -> "Scenario":
        return replace(self, mapping=mapping)

    def with_query(self, query: Query) -> "Scenario":
        return replace(self, query=query)

    def render(self) -> str:
        return render_scenario(self)


def render_scenario(scenario: Scenario) -> str:
    parts = []
    if scenario.label:
        parts.append(f"% repro.fuzz scenario: {scenario.label}")
    parts.append(MAPPING_MARKER)
    parts.append(render_mapping(scenario.mapping))
    parts.append(DATA_MARKER)
    data = render_instance(scenario.instance)
    if data:
        parts.append(data)
    parts.append(QUERY_MARKER)
    parts.append(render_query(scenario.query))
    return "\n".join(parts) + "\n"


def parse_scenario(text: str) -> Scenario:
    """Inverse of :func:`render_scenario` (accepts hand-written files too)."""
    sections = {MAPPING_MARKER: [], DATA_MARKER: [], QUERY_MARKER: []}
    label = ""
    current: list[str] | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped in sections:
            current = sections[stripped]
            continue
        if current is None:
            prefix = "% repro.fuzz scenario:"
            if stripped.startswith(prefix):
                label = stripped[len(prefix):].strip()
            continue
        current.append(line)
    mapping_text = "\n".join(sections[MAPPING_MARKER])
    if not mapping_text.strip():
        raise RenderError("scenario file has no mapping section")
    query_text = "\n".join(sections[QUERY_MARKER])
    if not query_text.strip():
        raise RenderError("scenario file has no query section")
    return Scenario(
        mapping=parse_mapping(mapping_text),
        instance=parse_instance("\n".join(sections[DATA_MARKER])),
        query=parse_program(query_text),
        label=label,
    )


# ------------------------------------------------------------- equality


def _query_parts(query: Query) -> tuple:
    if isinstance(query, ConjunctiveQuery):
        disjuncts: tuple[ConjunctiveQuery, ...] = (query,)
        name = query.name
    else:
        disjuncts = query.disjuncts
        name = query.name
    return (name, tuple((d.head_vars, d.body) for d in disjuncts))


def queries_equal(left: Query, right: Query) -> bool:
    """Structural equality modulo the CQ / one-disjunct-UCQ distinction."""
    return _query_parts(left) == _query_parts(right)


def mappings_equal(left: SchemaMapping, right: SchemaMapping) -> bool:
    return (
        left.source == right.source
        and left.target == right.target
        and left.st_tgds == right.st_tgds
        and left.target_tgds == right.target_tgds
        and left.target_egds == right.target_egds
    )


def scenarios_equal(left: Scenario, right: Scenario) -> bool:
    return (
        mappings_equal(left.mapping, right.mapping)
        and set(left.instance) == set(right.instance)
        and queries_equal(left.query, right.query)
    )
