"""Seeded random-scenario generation for differential fuzzing.

Two profiles, both deterministic in ``(seed, config)``:

- **freeform** — arbitrary ``glav+(wa-glav, egd)`` mappings built atom by
  atom: random source/target schemas, s-t tgds with existentials, weakly
  acyclic target tgds (rejection-filtered, or an explicit existential
  chain when ``skolem_heavy`` — the chain forces nested skolem values
  through the Theorem 1 reduction), key-style egds, instances whose
  constant pool is squeezed by ``conflict_rate``, and CQ/UCQ/boolean
  queries with optional constants;
- **ibench** — compositions of :mod:`repro.scenarios.ibench` primitives
  via :func:`~repro.scenarios.ibench.random_ibench_scenario`, with the
  builder's own conflicted-key instance generator and a random query over
  the composed target schema.

``profile="mixed"`` draws freeform ~70% of the time.  The module also
exposes the raw building blocks (:func:`random_tgd`, :func:`random_egd`,
:func:`random_cq`, :func:`random_dependency_set`) used by the parser
round-trip and weak-acyclicity property tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.dependencies.acyclicity import is_weakly_acyclic
from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.fuzz.render import Scenario
from repro.relational.instance import Fact, Instance
from repro.relational.queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
)
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Const, Variable
from repro.scenarios.ibench import random_ibench_scenario

PROFILES = ("freeform", "ibench", "mixed", "tpch")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for scenario generation and the differential config matrix."""

    profile: str = "mixed"
    # -- schema shape (freeform) --
    source_relations: int = 2
    target_relations: int = 2
    min_arity: int = 1
    max_arity: int = 3
    # -- dependency shape (freeform) --
    max_st_tgds: int = 3
    target_tgd_depth: int = 2
    existential_rate: float = 0.35
    skolem_heavy: bool = False
    max_egds: int = 2
    constant_rate: float = 0.1
    # -- instance shape --
    min_facts: int = 2
    max_facts: int = 8
    conflict_rate: float = 0.6
    constant_pool: int = 5
    # -- query shape --
    max_query_atoms: int = 2
    boolean_rate: float = 0.2
    ucq_rate: float = 0.2
    # -- ibench profile --
    ibench_primitives: int = 2
    ibench_keys: int = 2
    # -- tpch profile (fuzz-sized cells; the bench grid goes bigger) --
    tpch_max_scale: float = 0.005
    # -- exchange evaluation strategy for every engine in the matrix
    # (the differential runner additionally cross-checks the *other*
    # strategy on a dedicated axis regardless of this setting) --
    exchange_strategy: str = "batch"
    # -- differential config matrix --
    use_oracle: bool = True
    oracle_max_facts: int = 9
    # Figure 1 and the monolithic possible-answer pass *enumerate stable
    # models* of the one big program; on scenarios whose chase produces
    # many rule groundings (recursive target tgds over a conflict-heavy
    # instance) that enumeration is exponentially slower than the repair
    # encoding's cautious check.  Above this many groundings those two
    # checks are skipped — everything else in the matrix still runs.
    enumerative_limit: int = 300
    check_figure1: bool = True
    check_parallel: bool = True
    check_possible: bool = True
    parallel_jobs: int = 2
    # -- fault injection (repro.fuzz.faults; off by default — each seed
    # costs wall-clock proportional to fault_deadline when a hang fires) --
    check_faults: bool = False
    fault_deadline: float = 1.0
    fault_task_timeout: float = 0.4
    fault_hang_seconds: float = 2.5
    fault_retries: int = 2

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}; pick from {PROFILES}")
        if self.exchange_strategy not in ("batch", "tuple"):
            raise ValueError(
                f"unknown exchange strategy {self.exchange_strategy!r}; "
                "choose 'batch' or 'tuple'"
            )
        if self.tpch_max_scale <= 0:
            raise ValueError("tpch_max_scale must be positive")
        if not 1 <= self.min_arity <= self.max_arity:
            raise ValueError("need 1 <= min_arity <= max_arity")
        if self.min_facts > self.max_facts:
            raise ValueError("need min_facts <= max_facts")
        for knob in (
            "existential_rate",
            "constant_rate",
            "conflict_rate",
            "boolean_rate",
            "ucq_rate",
        ):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {value}")
        if self.check_faults:
            if self.fault_deadline <= 0 or self.fault_task_timeout <= 0:
                raise ValueError("fault deadlines must be positive")
            if self.fault_hang_seconds <= self.fault_deadline:
                raise ValueError(
                    "fault_hang_seconds must exceed fault_deadline, or the "
                    "injected hang finishes inside the budget and nothing "
                    "degrades"
                )
            if self.fault_retries < 1:
                raise ValueError("fault_retries must be >= 1 for the recovery check")


DEFAULT_CONFIG = FuzzConfig()

_VARS = [Variable(f"x{i}") for i in range(6)]
_EXISTENTIALS = [Variable(f"e{i}") for i in range(4)]


def _constant(rng: random.Random, config: FuzzConfig) -> str:
    """``conflict_rate`` biases draws into a two-constant hot pool, so egd
    bodies join and violations actually fire."""
    if rng.random() < config.conflict_rate:
        return rng.choice(("c0", "c1"))
    return f"c{rng.randint(0, max(config.constant_pool - 1, 0))}"


def _term(rng: random.Random, variables, config: FuzzConfig):
    if config.constant_rate and rng.random() < config.constant_rate:
        return Const(_constant(rng, config))
    return rng.choice(variables)


# --------------------------------------------------------- building blocks


def random_atom(
    rng: random.Random,
    relations: list[RelationSymbol],
    variables,
    config: FuzzConfig = DEFAULT_CONFIG,
    constants: bool = True,
) -> Atom:
    rel = rng.choice(relations)
    terms = []
    for _ in range(rel.arity):
        if constants:
            terms.append(_term(rng, variables, config))
        else:
            terms.append(rng.choice(variables))
    return Atom(rel.name, terms)


def random_tgd(
    rng: random.Random,
    body_relations: list[RelationSymbol],
    head_relations: list[RelationSymbol],
    config: FuzzConfig = DEFAULT_CONFIG,
) -> TGD:
    """A random tgd; head slots turn existential with ``existential_rate``."""
    body = [
        random_atom(rng, body_relations, _VARS[:4], config)
        for _ in range(rng.randint(1, 2))
    ]
    if len(body) == 2 and not (body[0].variables() & body[1].variables()):
        # Stitch a shared variable in: a cartesian-product body multiplies
        # its groundings quadratically, and downstream (especially for
        # target tgds feeding themselves) the programs explode.
        anchor = sorted(body[0].variables(), key=lambda v: v.name)
        slots = [
            index
            for index, term in enumerate(body[1].terms)
            if isinstance(term, Variable)
        ]
        if anchor and slots:
            terms = list(body[1].terms)
            terms[rng.choice(slots)] = rng.choice(anchor)
            body[1] = Atom(body[1].relation, terms)
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    heads = []
    for _ in range(rng.randint(1, 2)):
        rel = rng.choice(head_relations)
        terms = []
        for _ in range(rel.arity):
            if not body_vars or rng.random() < config.existential_rate:
                terms.append(rng.choice(_EXISTENTIALS))
            else:
                terms.append(rng.choice(body_vars))
        heads.append(Atom(rel.name, terms))
    return TGD(body, heads)


def random_egd(
    rng: random.Random,
    relations: list[RelationSymbol],
    config: FuzzConfig = DEFAULT_CONFIG,
) -> EGD | None:
    """A random egd over ``relations``, or ``None`` when no sensible one
    can be drawn.

    Multi-atom bodies are required to share a variable: an egd whose body
    is a cartesian product (``T(x), T(y) -> x = y``) equates *all pairs*
    of values, which collapses every violation into one giant cluster and
    makes the ground programs explode — a degenerate shape no real key or
    functional dependency has.
    """
    keyed = [r for r in relations if r.arity >= 2]
    if keyed and rng.random() < 0.7:
        # Key-style: two rows agreeing on a key position equate another.
        rel = rng.choice(keyed)
        key = rng.randrange(rel.arity)
        dep = rng.choice([p for p in range(rel.arity) if p != key])
        first = [Variable(f"a{i}") for i in range(rel.arity)]
        second = [Variable(f"b{i}") for i in range(rel.arity)]
        second[key] = first[key]
        body = [Atom(rel.name, first), Atom(rel.name, second)]
        # No constant rhs here: a key self-join forcing a position to a
        # (hot-pool) constant merges every null flowing through the joined
        # position into one value, collapsing the whole quasi-solution into
        # a single violation cluster — the programs stop being cluster-sized
        # and all engines blow up together.  Real keys equate variables.
        return EGD(body, first[dep], second[dep])
    for _ in range(4):
        body = [
            random_atom(rng, relations, _VARS[:4], config, constants=False)
            for _ in range(rng.randint(1, 2))
        ]
        if len(body) == 2 and not (body[0].variables() & body[1].variables()):
            continue  # cartesian product: see the docstring
        body_vars = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        if len(body_vars) < 2:
            continue
        lhs, rhs = rng.sample(body_vars, 2)
        if (
            config.constant_rate
            and len(body) > 1
            and rng.random() < config.constant_rate
        ):
            # Constant rhs only behind a join: a single-atom body with a
            # constant rhs (T(x, y) -> y = 'c') puts *every* fact of the
            # relation in violation — one giant cluster, no locality.
            return EGD(body, lhs, Const(_constant(rng, config)))
        return EGD(body, lhs, rhs)
    return None


def random_cq(
    rng: random.Random,
    relations: list[RelationSymbol],
    config: FuzzConfig = DEFAULT_CONFIG,
    name: str = "q",
    head_width: int | None = None,
) -> ConjunctiveQuery:
    """A random CQ; ``head_width`` pins the answer arity (for UCQs)."""
    body = [
        random_atom(rng, relations, _VARS[:3], config)
        for _ in range(rng.randint(1, max(config.max_query_atoms, 1)))
    ]
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    if head_width is None:
        if rng.random() < config.boolean_rate:
            head_width = 0
        else:
            head_width = rng.randint(0, min(2, len(body_vars)))
    head = rng.sample(body_vars, min(head_width, len(body_vars)))
    if len(head) < head_width:
        # Not enough variables for the pinned width: pad the body with a
        # fresh all-variable atom so every disjunct keeps the same arity.
        rel = rng.choice(relations)
        if rel.arity > 0:
            extra_vars = _VARS[3 : 3 + rel.arity]
            body.append(Atom(rel.name, extra_vars))
            pool = sorted(
                ({v for a in body for v in a.variables()} - set(head)),
                key=lambda v: v.name,
            )
            while len(head) < head_width and pool:
                head.append(pool.pop(0))
    if len(head) < head_width:
        head_width = len(head)
    return ConjunctiveQuery(head[:head_width] if head_width else [], body, name=name)


def random_query(
    rng: random.Random,
    relations: list[RelationSymbol],
    config: FuzzConfig = DEFAULT_CONFIG,
) -> ConjunctiveQuery | UnionOfConjunctiveQueries:
    if rng.random() < config.ucq_rate:
        width = rng.randint(0, 2)
        first = random_cq(rng, relations, config, head_width=width)
        second = random_cq(rng, relations, config, head_width=len(first.head_vars))
        # Either disjunct's padding may have clipped its width (narrow
        # relations): truncate both to the smaller — head vars are always
        # body vars, so a shorter head stays well-formed.
        width = min(len(first.head_vars), len(second.head_vars))
        if len(first.head_vars) != width:
            first = ConjunctiveQuery(first.head_vars[:width], first.body, name=first.name)
        if len(second.head_vars) != width:
            second = ConjunctiveQuery(second.head_vars[:width], second.body, name=second.name)
        return UnionOfConjunctiveQueries([first, second])
    return random_cq(rng, relations, config)


def random_dependency_set(
    rng: random.Random,
    relations: int = 3,
    max_arity: int = 3,
    count: int = 4,
    existential_rate: float = 0.4,
) -> list[TGD]:
    """A random, *possibly cyclic* tgd set over one schema — raw material
    for the weak-acyclicity property tests (no rejection filtering)."""
    symbols = [
        RelationSymbol(f"P{i}", rng.randint(1, max_arity)) for i in range(relations)
    ]
    config = replace(
        DEFAULT_CONFIG, existential_rate=existential_rate, constant_rate=0.0
    )
    return [
        random_tgd(rng, symbols, symbols, config) for _ in range(rng.randint(1, count))
    ]


# ------------------------------------------------------- freeform profile


def _random_schema(
    rng: random.Random, prefix: str, count: int, config: FuzzConfig
) -> list[RelationSymbol]:
    return [
        RelationSymbol(
            f"{prefix}{i}", rng.randint(config.min_arity, config.max_arity)
        )
        for i in range(rng.randint(1, max(count, 1)))
    ]


def random_freeform_scenario(seed: int, config: FuzzConfig = DEFAULT_CONFIG) -> Scenario:
    rng = random.Random(f"freeform:{seed}")

    source_rels = _random_schema(rng, "S", config.source_relations, config)
    target_rels = _random_schema(rng, "T", config.target_relations, config)

    st_tgds = [
        random_tgd(rng, source_rels, target_rels, config)
        for _ in range(rng.randint(1, max(config.max_st_tgds, 1)))
    ]

    target_tgds: list[TGD] = []
    if config.skolem_heavy and config.target_tgd_depth > 0:
        # An explicit existential chain C0 -> ∃ C1 -> ∃ C2 ... : weakly
        # acyclic by layering, and every link deepens the skolem nesting
        # the Theorem 1 reduction must carry through the chase.
        depth = rng.randint(1, config.target_tgd_depth)
        chain = [RelationSymbol(f"C{i}", 2) for i in range(depth + 1)]
        target_rels = target_rels + chain
        x, y, z = _VARS[0], _VARS[1], _EXISTENTIALS[0]
        feeder = rng.choice(source_rels)
        feed_body = [Atom(feeder.name, [x] + [_VARS[1]] * (feeder.arity - 1))]
        st_tgds.append(TGD(feed_body, [Atom(chain[0].name, [x, x])]))
        for lower, upper in zip(chain, chain[1:]):
            target_tgds.append(
                TGD([Atom(lower.name, [x, y])], [Atom(upper.name, [y, z])])
            )
        # A functional egd at the end of the chain: conflicts must travel
        # through the nested skolems to be detected.
        u, v, w = _VARS[0], _VARS[1], _VARS[2]
        last = chain[-1].name
        target_egds = [EGD([Atom(last, [u, v]), Atom(last, [u, w])], v, w)]
    else:
        target_egds = []
        for _ in range(rng.randint(0, max(config.target_tgd_depth, 0))):
            candidate = random_tgd(rng, target_rels, target_rels, config)
            if is_weakly_acyclic(target_tgds + [candidate]):
                target_tgds.append(candidate)

    for _ in range(rng.randint(1, max(config.max_egds, 1))):
        egd = random_egd(rng, target_rels, config)
        if egd is not None:
            target_egds.append(egd)

    mapping = SchemaMapping(
        Schema(source_rels),
        Schema(target_rels),
        st_tgds,
        target_tgds,
        target_egds,
    )

    facts = []
    for _ in range(rng.randint(config.min_facts, config.max_facts)):
        rel = rng.choice(source_rels)
        facts.append(
            Fact(rel.name, tuple(_constant(rng, config) for _ in range(rel.arity)))
        )
    instance = Instance(facts)

    query = random_query(rng, target_rels, config)
    return Scenario(mapping, instance, query, label=f"freeform seed={seed}")


# --------------------------------------------------------- ibench profile


def random_ibench_fuzz_scenario(
    seed: int, config: FuzzConfig = DEFAULT_CONFIG
) -> Scenario:
    rng = random.Random(f"ibench:{seed}")
    built = random_ibench_scenario(
        seed, size=rng.randint(1, max(config.ibench_primitives, 1))
    )
    instance = built.generate(
        keys_per_primitive=rng.randint(1, max(config.ibench_keys, 1)),
        conflict_rate=config.conflict_rate,
        seed=seed,
    )
    target_rels = list(built.mapping.target)
    query_config = replace(config, constant_rate=0.0)  # ibench values are keyed
    query = random_query(rng, target_rels, query_config)
    return Scenario(built.mapping, instance, query, label=f"ibench seed={seed}")


# ----------------------------------------------------------- tpch profile


def random_tpch_fuzz_scenario(
    seed: int, config: FuzzConfig = DEFAULT_CONFIG
) -> Scenario:
    """A fuzz-sized cell of the TPC-H grid (scenario + random query).

    The (sf, ratio) cell is drawn from the seed, capped by
    ``config.tpch_max_scale`` so differential runs stay tractable; the
    instance itself is the deterministic
    :func:`repro.scenarios.tpch.tpch_scenario` generator, so the fuzzer
    exercises exactly the same code path the benchmarks scale up.
    """
    from repro.scenarios.tpch import TPCH_FUZZ_RATIOS, TPCH_FUZZ_SCALES, tpch_scenario

    rng = random.Random(f"tpch-profile:{seed}")
    scale = rng.choice(
        [sf for sf in TPCH_FUZZ_SCALES if sf <= config.tpch_max_scale]
        or [min(TPCH_FUZZ_SCALES)]
    )
    ratio = rng.choice(TPCH_FUZZ_RATIOS)
    built = tpch_scenario(scale, ratio, seed)
    target_rels = list(built.mapping.target)
    query_config = replace(config, constant_rate=0.0)  # tpch values are keyed
    query = random_query(rng, target_rels, query_config)
    return Scenario(
        built.mapping,
        built.instance,
        query,
        label=f"tpch sf={scale} ratio={ratio} seed={seed}",
    )


# ----------------------------------------------------------------- entry


def random_scenario(seed: int, config: FuzzConfig = DEFAULT_CONFIG) -> Scenario:
    """The scenario for ``seed`` under ``config`` (profile-dispatched)."""
    if config.profile == "freeform":
        return random_freeform_scenario(seed, config)
    if config.profile == "ibench":
        return random_ibench_fuzz_scenario(seed, config)
    if config.profile == "tpch":
        return random_tpch_fuzz_scenario(seed, config)
    rng = random.Random(f"profile:{seed}")
    if rng.random() < 0.7:
        return random_freeform_scenario(seed, config)
    return random_ibench_fuzz_scenario(seed, config)
