"""The original randomized cross-validation generator (migrated).

This module is the library home of what used to live in the (now retired)
``tests/test_xr`` helper shim: a seeded generator of small random
``glav+(wa-glav, egd)`` schema mappings, source instances, and conjunctive
queries, plus :func:`check_scenario`, which runs all three XR-Certain
implementations and returns their answers for comparison.

The generation logic is kept **byte-for-byte seed-compatible** with the
historical helper: seed ``s`` produces exactly the scenario it always did,
so the known regression seeds recorded in ``tests/test_xr/test_property.py``
and serialized into ``tests/corpus/`` keep their meaning.  New fuzzing
profiles with richer knobs live in :mod:`repro.fuzz.generator`; this one
stays frozen.
"""

from __future__ import annotations

import random

from repro.dependencies import EGD, TGD, SchemaMapping
from repro.dependencies.acyclicity import is_weakly_acyclic
from repro.fuzz.render import Scenario
from repro.relational import Fact, Instance
from repro.relational.queries import Atom, ConjunctiveQuery
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Variable

VARS = [Variable(name) for name in "xyzuvw"]
CONSTS = ["a", "b", "c"]
SOURCE_RELATIONS = [("R", 2), ("S", 2)]
TARGET_RELATIONS = [("T", 2), ("U", 2)]

__all__ = [
    "VARS",
    "CONSTS",
    "SOURCE_RELATIONS",
    "TARGET_RELATIONS",
    "random_atom",
    "random_scenario",
    "xval_scenario",
    "check_scenario",
]


def random_atom(rng: random.Random, relations, variables) -> Atom:
    name, arity = rng.choice(relations)
    return Atom(name, [rng.choice(variables) for _ in range(arity)])


def random_scenario(
    seed: int,
) -> tuple[SchemaMapping, Instance, ConjunctiveQuery]:
    """A random small scenario: mapping + instance + query."""
    rng = random.Random(seed)

    st_tgds = []
    for _ in range(rng.randint(1, 3)):
        body = [
            random_atom(rng, SOURCE_RELATIONS, VARS[:3])
            for _ in range(rng.randint(1, 2))
        ]
        body_vars = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        pool = body_vars + ([VARS[4]] if rng.random() < 0.4 else body_vars)
        head_terms = [rng.choice(pool), rng.choice(pool)]
        name, arity = rng.choice(TARGET_RELATIONS)
        st_tgds.append(TGD(body, [Atom(name, head_terms[:arity])]))

    target_tgds = []
    for _ in range(rng.randint(0, 2)):
        body = [
            random_atom(rng, TARGET_RELATIONS, VARS[:3])
            for _ in range(rng.randint(1, 2))
        ]
        body_vars = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        if not body_vars:
            continue
        pool = body_vars + ([VARS[5]] if rng.random() < 0.3 else body_vars)
        head_terms = [rng.choice(pool), rng.choice(pool)]
        name, arity = rng.choice(TARGET_RELATIONS)
        candidate = TGD(body, [Atom(name, head_terms[:arity])])
        if is_weakly_acyclic(target_tgds + [candidate]):
            target_tgds.append(candidate)

    egds = []
    for _ in range(rng.randint(1, 2)):
        body = [
            random_atom(rng, TARGET_RELATIONS, VARS[:4])
            for _ in range(rng.randint(1, 2))
        ]
        body_vars = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        if len(body_vars) < 2:
            continue
        lhs, rhs = rng.sample(body_vars, 2)
        egds.append(EGD(body, lhs, rhs))

    mapping = SchemaMapping(
        Schema([RelationSymbol(n, a) for n, a in SOURCE_RELATIONS]),
        Schema([RelationSymbol(n, a) for n, a in TARGET_RELATIONS]),
        st_tgds,
        target_tgds,
        egds,
    )

    instance = Instance(
        Fact(rng.choice(["R", "S"]), (rng.choice(CONSTS), rng.choice(CONSTS)))
        for _ in range(rng.randint(2, 7))
    )

    query_body = [
        random_atom(rng, TARGET_RELATIONS, VARS[:3])
        for _ in range(rng.randint(1, 2))
    ]
    query_vars = sorted(
        {v for atom in query_body for v in atom.variables()}, key=lambda v: v.name
    )
    head = rng.sample(query_vars, rng.randint(0, min(2, len(query_vars))))
    query = ConjunctiveQuery(head, query_body)
    return mapping, instance, query


def xval_scenario(seed: int) -> Scenario:
    """Seed ``seed`` as a :class:`~repro.fuzz.render.Scenario` (for the
    differential runner, the shrinker, and the regression corpus)."""
    mapping, instance, query = random_scenario(seed)
    return Scenario(mapping, instance, query, label=f"xval seed={seed}")


def check_scenario(seed: int) -> tuple[set, set, set]:
    """Run all three engines; returns (oracle, monolithic, segmentary)."""
    from repro.xr.monolithic import MonolithicEngine
    from repro.xr.oracle import xr_certain_oracle
    from repro.xr.segmentary import SegmentaryEngine

    mapping, instance, query = random_scenario(seed)
    oracle = xr_certain_oracle(query, instance, mapping)
    monolithic = MonolithicEngine(mapping, instance).answer(query)
    segmentary = SegmentaryEngine(mapping, instance).answer(query)
    return oracle, monolithic, segmentary


if __name__ == "__main__":
    import sys

    start = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    mismatches = 0
    for seed in range(start, start + count):
        oracle, monolithic, segmentary = check_scenario(seed)
        if not (oracle == monolithic == segmentary):
            mismatches += 1
            mapping, instance, query = random_scenario(seed)
            print(f"MISMATCH seed={seed}")
            print(" mapping:", mapping.st_tgds, mapping.target_tgds, mapping.target_egds)
            print(" instance:", sorted(map(repr, instance)))
            print(" query:", query)
            print(" oracle:", sorted(oracle))
            print(" monolithic:", sorted(monolithic))
            print(" segmentary:", sorted(segmentary))
            if mismatches > 2:
                break
        if (seed - start) % 50 == 49:
            print(f"... {seed - start + 1} scenarios", flush=True)
    print("cross-validation done. mismatches:", mismatches)
