"""Deterministic fault injection for the solve path.

The resource-governance layer (:mod:`repro.runtime.budget`) promises that
crashed workers are retried, wedged workers are abandoned at the deadline,
and whatever could not be decided is reported as *unknown* — never
silently dropped, never fabricated.  This module turns those promises into
checkable invariants:

- :class:`FaultPlan` — a seeded, deterministic schedule of injected
  faults, keyed on (task index, dispatch attempt): ``crash_on`` indices
  kill the worker process outright (``os._exit``), ``hang_on`` indices
  sleep through every budget without ever reaching a cooperative check;
- :class:`FaultInjectingExecutor` — a :class:`~repro.runtime.ParallelExecutor`
  whose worker entry point consults the plan before solving;
- :func:`run_fault_check` — the differential: exact answers from a clean
  sequential engine vs a crash-recovery run (must match exactly) and a
  budgeted degraded run (must bracket the truth):

  ``degraded-certain ⊆ exact-certain ⊆ exact-possible ⊆ degraded-possible``

  plus completeness of the unknown report — every exact answer the
  degraded run failed to produce must be listed in
  ``stats.unknown_candidates``.

Faults are injected *between* the executor and the solver, so every
recovery path exercised here (mid-batch ``BrokenProcessPool``, per-task
retry, pool recreation, parent-side wedge detection) is the same code a
production crash would take.
"""

from __future__ import annotations

import functools
import os
import random
import time
from dataclasses import dataclass

from repro.fuzz.differential import Discrepancy, _fmt
from repro.fuzz.generator import DEFAULT_CONFIG, FuzzConfig
from repro.fuzz.render import Scenario
from repro.runtime.budget import SolveBudget
from repro.runtime.executor import ParallelExecutor, _solve_pickled


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    ``crash_on``/``hang_on`` are task indices within a batch.  A crash
    fires while the task's dispatch ``attempt`` is below
    ``crash_attempts`` — the default of 1 means "crash the first dispatch,
    succeed on retry", which is the transient-fault shape retries exist
    for.  A hang fires below ``hang_attempts`` (default: always), because
    a wedged computation stays wedged however often you re-run it.
    """

    crash_on: frozenset = frozenset()
    hang_on: frozenset = frozenset()
    crash_attempts: int = 1
    hang_attempts: int = 1_000_000
    hang_seconds: float = 2.5
    exit_code: int = 17


def _fault_worker(
    plan: FaultPlan,
    payload: bytes,
    index: int = 0,
    attempt: int = 0,
    deadline_at: float | None = None,
):
    """Worker entry point: apply the plan, then solve normally.

    Module-level (and dispatched via ``functools.partial`` over a frozen
    dataclass) so it stays picklable for spawn-based pools.
    """
    if index in plan.crash_on and attempt < plan.crash_attempts:
        os._exit(plan.exit_code)  # simulate a segfaulting/OOM-killed worker
    if index in plan.hang_on and attempt < plan.hang_attempts:
        # A non-cooperative hang: the sleep never checks any deadline, so
        # only the parent-side wait bound can reclaim this task.
        time.sleep(plan.hang_seconds)
    return _solve_pickled(payload, index, attempt, deadline_at)


class FaultInjectingExecutor(ParallelExecutor):
    """A ParallelExecutor whose workers fail on schedule.

    ``min_batch`` defaults to 1 so even one-task batches go through the
    pool (fuzz scenarios are small; faults must still fire on them).
    """

    name = "fault-injecting"

    def __init__(
        self,
        plan: FaultPlan,
        jobs: int = 2,
        min_batch: int = 1,
        deadline_grace: float = 0.25,
    ):
        super().__init__(
            jobs=jobs, min_batch=min_batch, deadline_grace=deadline_grace
        )
        self.plan = plan
        self._worker = functools.partial(_fault_worker, plan)


def fault_plan_for_seed(
    seed: int, max_index: int = 6, hang_seconds: float = 2.5
) -> FaultPlan:
    """The deterministic fault schedule for a fuzz seed.

    Seeded by integer arithmetic only (no str hashing, which is salted
    per interpreter), so campaigns and replays inject identical faults.
    """
    rng = random.Random((seed * 2654435761 + 0x5EED) & 0xFFFFFFFF)
    # Index 0 is always faulted: segmentary batches are often a single
    # task, and a plan that only hits higher indices would inject nothing.
    # The seed decides whether that guaranteed fault is a crash (the
    # recovery path) or a hang (the degradation path).
    rest = list(range(1, max_index))
    if rng.random() < 0.5:
        crash = {0, rng.choice(rest)} if rest else {0}
        hang_pool = [i for i in rest if i not in crash]
        hang = {rng.choice(hang_pool)} if hang_pool else set()
    else:
        hang = {0}
        crash = set(rng.sample(rest, k=min(2, len(rest))))
    return FaultPlan(
        crash_on=frozenset(crash),
        hang_on=frozenset(hang),
        hang_seconds=hang_seconds,
    )


def run_fault_check(
    scenario: Scenario, config: FuzzConfig = DEFAULT_CONFIG, seed: int = 0
) -> list[Discrepancy]:
    """Check the degradation invariants of one scenario under faults.

    Two runs against a clean sequential baseline:

    - **recovery** — crash-only faults, retries allowed, no deadline:
      answers must be *identical* to the exact ones (a transient crash is
      invisible after retry);
    - **degradation** — crashes plus non-cooperative hangs under a tight
      budget, ``allow_partial=True``: certain answers must under-, and
      possible answers over-approximate the exact ones, with every gap
      accounted for in ``stats.unknown_candidates``.
    """
    from repro.xr.segmentary import SegmentaryEngine

    problems: list[Discrepancy] = []
    mapping, instance, query = scenario.mapping, scenario.instance, scenario.query
    plan = fault_plan_for_seed(seed, hang_seconds=config.fault_hang_seconds)

    with SegmentaryEngine(mapping, instance, cache=False) as exact_engine:
        exact_certain = frozenset(exact_engine.answer(query))
        exact_possible = frozenset(exact_engine.possible_answers(query))

    def complain(kind: str, left: str, right: str, detail: str) -> None:
        problems.append(Discrepancy(kind, left, right, detail))

    # -- recovery: crashes only, enough retries, no deadline ------------
    crash_plan = FaultPlan(crash_on=plan.crash_on, crash_attempts=1)
    retry_budget = SolveBudget(
        max_retries=config.fault_retries, retry_backoff=0.01
    )
    with FaultInjectingExecutor(crash_plan, jobs=config.parallel_jobs) as ex:
        with SegmentaryEngine(
            mapping, instance, cache=False, executor=ex, budget=retry_budget
        ) as engine:
            recovered_certain = frozenset(engine.answer(query, allow_partial=True))
            recovered_possible = frozenset(
                engine.possible_answers(query, allow_partial=True)
            )
    if recovered_certain != exact_certain:
        complain(
            "fault-recovery-mismatch", "exact", "crash-retry-certain",
            f"{_fmt(exact_certain)} != {_fmt(recovered_certain)}",
        )
    if recovered_possible != exact_possible:
        complain(
            "fault-recovery-mismatch", "exact", "crash-retry-possible",
            f"{_fmt(exact_possible)} != {_fmt(recovered_possible)}",
        )

    # -- degradation: crashes + hangs under a tight budget --------------
    budget = SolveBudget(
        deadline=config.fault_deadline,
        task_timeout=config.fault_task_timeout,
        max_retries=1,
        retry_backoff=0.01,
    )
    with FaultInjectingExecutor(plan, jobs=config.parallel_jobs) as ex:
        with SegmentaryEngine(
            mapping, instance, cache=False, executor=ex, budget=budget
        ) as engine:
            degraded_certain, certain_stats = engine.answer_with_stats(
                query, mode="certain", allow_partial=True
            )
            degraded_possible, possible_stats = engine.answer_with_stats(
                query, mode="possible", allow_partial=True
            )
    degraded_certain = frozenset(degraded_certain)
    degraded_possible = frozenset(degraded_possible)

    if not degraded_certain <= exact_certain:
        complain(
            "degradation-unsound", "degraded-certain", "exact-certain",
            f"fabricated {_fmt(degraded_certain - exact_certain)}",
        )
    if not exact_certain <= degraded_certain | certain_stats.unknown_candidates:
        complain(
            "degradation-incomplete", "exact-certain", "degraded-certain",
            "dropped without being reported unknown: "
            f"{_fmt(exact_certain - degraded_certain - certain_stats.unknown_candidates)}",
        )
    if not exact_possible <= degraded_possible:
        complain(
            "degradation-unsound", "exact-possible", "degraded-possible",
            f"missing {_fmt(exact_possible - degraded_possible)}",
        )
    if not degraded_possible <= exact_possible | possible_stats.unknown_candidates:
        complain(
            "degradation-incomplete", "degraded-possible", "exact-possible",
            "fabricated beyond the unknown set: "
            f"{_fmt(degraded_possible - exact_possible - possible_stats.unknown_candidates)}",
        )
    return problems
