"""Source-instance deltas and the textual update-stream format.

A :class:`Delta` is one atomic batch of tuple inserts and retracts against
the *source* instance; applying it yields ``(source − retracts) ∪ inserts``.
Update streams (``updates.txt`` for ``repro answer --updates``, the fuzz
corpus, and the benchmarks) serialize a list of deltas as::

    % optional comment
    +R('a', 1).
    -S('b').

    +R('c', 2).

one line per tuple (``+`` insert, ``-`` retract), blank lines separating
steps, ``%`` starting a comment.  Facts use the same syntax as instance
files and are parsed by the shared parser.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.instance import Fact, Instance


@dataclass(frozen=True)
class Delta:
    """One update step: apply as ``(source − retracts) ∪ inserts``."""

    inserts: frozenset[Fact] = frozenset()
    retracts: frozenset[Fact] = frozenset()

    def is_noop(self) -> bool:
        return not self.inserts and not self.retracts

    def support_facts(self) -> frozenset[Fact]:
        """Every fact the delta mentions (for locality statements)."""
        return self.inserts | self.retracts

    def normalized(self, source: Instance) -> "Delta":
        """The effective delta against ``source``.

        Inserts already present are dropped, retracts of absent facts are
        dropped, and a fact both inserted and retracted ends up present
        (the insert wins), matching the set semantics above.
        """
        inserts = frozenset(f for f in self.inserts if f not in source)
        retracts = frozenset(
            f
            for f in self.retracts
            if f in source and f not in self.inserts
        )
        return Delta(inserts=inserts, retracts=retracts)

    def inverted(self) -> "Delta":
        """The delta undoing this one (exact once normalized)."""
        return Delta(inserts=self.retracts, retracts=self.inserts)

    def __repr__(self) -> str:
        return (
            f"Delta(+{sorted(self.inserts, key=repr)!r}, "
            f"-{sorted(self.retracts, key=repr)!r})"
        )


def apply_delta(instance: Instance, delta: Delta) -> Instance:
    """A fresh instance with ``delta`` applied (the reference semantics)."""
    updated = instance.copy()
    for fact in delta.retracts:
        updated.discard(fact)
    for fact in delta.inserts:
        updated.add(fact)
    return updated


def parse_update_stream(text: str) -> list[Delta]:
    """Parse the textual update-stream format into a list of deltas."""
    from repro.parser.parser import parse_instance

    steps: list[Delta] = []
    insert_lines: list[str] = []
    retract_lines: list[str] = []

    def flush() -> None:
        if not insert_lines and not retract_lines:
            return
        inserts = frozenset(parse_instance("\n".join(insert_lines)))
        retracts = frozenset(parse_instance("\n".join(retract_lines)))
        steps.append(Delta(inserts=inserts, retracts=retracts))
        insert_lines.clear()
        retract_lines.clear()

    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].strip()
        if not line:
            flush()
            continue
        if line.startswith("+"):
            insert_lines.append(line[1:].strip())
        elif line.startswith("-"):
            retract_lines.append(line[1:].strip())
        else:
            raise ValueError(
                f"update stream line must start with '+' or '-': {raw_line!r}"
            )
    flush()
    return steps


def render_update_stream(deltas: list[Delta]) -> str:
    """Serialize deltas back into the textual format (deterministic).

    Empty steps are dropped: the format has no way to express them, and
    every producer (fuzz generator, shrinker) guarantees non-empty steps.
    """
    blocks: list[str] = []
    for delta in deltas:
        if delta.is_noop():
            continue
        lines = [f"+{fact!r}." for fact in sorted(delta.inserts, key=repr)]
        lines += [f"-{fact!r}." for fact in sorted(delta.retracts, key=repr)]
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"
