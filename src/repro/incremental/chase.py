"""Semi-naive delta-chase over materialized exchange data.

Maintains the chased instance, the grounding list, and the violation list
of an :class:`~repro.xr.exchange.ExchangeData` under one normalized
:class:`~repro.incremental.delta.Delta`, without re-running the chase or
the grounding/violation joins from scratch:

**Retraction** is exact liveness over recorded provenance: the facts
derivable from the remaining sources are recomputed by count-down
propagation over the grounding adjacency
(:func:`~repro.xr.envelope.derivable_ids`, Dowling–Gallier); everything
chased but no longer derivable is dead.  A grounding dies iff any body
fact dies (a live body forces a live head), a violation iff any body fact
dies.

**Insertion** is a semi-naive worklist doubling as grounding enumeration:
every new fact is added to the chased instance and then *pivoted* through
the shared :class:`~repro.chase.gav.RuleIndex` — each binding of the rest
of a rule body yields a grounding whose head is derived (and enqueued if
new).  A grounding with several new body facts is found when pivoting on
whichever of them is processed last (all the others are already in the
instance by then), so every grounding touching the delta is enumerated;
groundings whose body predates the delta were enumerated before.  New
violations are found the same way after the chase settles, pivoting each
new fact through the egd bodies, deduplicated against the live set by the
canonical :func:`~repro.xr.exchange.violation_key`.

Adjacency indexes are maintained **in place** (swap-remove on deletion,
append on insertion — see :func:`~repro.xr.exchange.remove_groundings`);
a delta costs work proportional to what it touched, not to the exchange
size.  Fact ids are **stable**: dead facts keep their interned id with
adjacency rows drained, so a later re-insertion rejoins the same id and
every id-keyed artifact — envelopes, signatures, cache keys — stays
meaningful across the whole update session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.gav import RuleIndex, _unify_atom_with_fact
from repro.dependencies.egds import EGD
from repro.relational.instance import Fact, Instance
from repro.relational.queries import CompiledJoin
from repro.xr.envelope import derivable_ids
from repro.xr.exchange import (
    ExchangeData,
    Violation,
    append_grounding,
    append_violation,
    grounded_egd_violation,
    remove_groundings,
    remove_violations,
    violation_key,
)

from repro.incremental.delta import Delta

#: Identity of one grounding.  The rule is keyed by ``id()``: reduced
#: mappings can hold *distinct* rules that compare equal (``TGD.__eq__``
#: ignores labels, and e.g. a duplicated head atom splits into two
#: value-identical single-head rules), and each owns its own groundings.
#: Rule objects are stable for the data's lifetime (``mapping.all_tgds()``
#: returns the stored tuples), so ``id`` is a sound key.
GroundingKey = tuple[int, tuple[Fact, ...], Fact]


def grounding_key(
    rule, body_facts: tuple[Fact, ...], head_fact: Fact
) -> GroundingKey:
    return (id(rule), body_facts, head_fact)


class EgdPivotEntry:
    """One (egd, pivot-atom) pair; mirror of the tgd pivot entries."""

    __slots__ = ("egd", "pivot", "rest", "_join")

    def __init__(self, egd: EGD, position: int) -> None:
        self.egd = egd
        self.pivot = egd.body[position]
        self.rest = [a for i, a in enumerate(egd.body) if i != position]
        self._join: CompiledJoin | None = None

    def join(self, instance: Instance) -> CompiledJoin:
        if self._join is None:
            self._join = CompiledJoin(
                instance, self.rest, self.pivot.variables()
            )
        return self._join

    def seed(self, fact: Fact):
        return _unify_atom_with_fact(self.pivot, fact, {})


class EgdIndex:
    """Per-relation pivot index over egd bodies (violation maintenance)."""

    def __init__(self, egds) -> None:
        self.by_relation: dict[str, list[EgdPivotEntry]] = {}
        for egd in egds:
            for position, atom in enumerate(egd.body):
                self.by_relation.setdefault(atom.relation, []).append(
                    EgdPivotEntry(egd, position)
                )

    def entries_for(self, relation: str) -> list[EgdPivotEntry]:
        return self.by_relation.get(relation, [])


@dataclass
class DeltaChaseReport:
    """What one delta did to the fact-level exchange state (in id space)."""

    new_ids: set[int] = field(default_factory=set)
    dead_ids: set[int] = field(default_factory=set)
    added_groundings: int = 0
    removed_groundings: int = 0
    # Ids of every fact of an added grounding (bodies may be old facts:
    # they mark where new derivations attach) and heads of removed ones.
    added_grounding_fact_ids: set[int] = field(default_factory=set)
    removed_grounding_head_ids: set[int] = field(default_factory=set)
    new_violations: list[Violation] = field(default_factory=list)
    dead_violations: list[Violation] = field(default_factory=list)

    def dirty_ids(self) -> set[int]:
        """Every fact id whose derivation neighborhood the delta changed —
        the conservative support of the delta for cluster-touch tests."""
        return (
            self.new_ids
            | self.dead_ids
            | self.added_grounding_fact_ids
            | self.removed_grounding_head_ids
        )


def apply_delta_chase(
    data: ExchangeData,
    delta: Delta,
    rule_index: RuleIndex,
    egd_index: EgdIndex,
    grounding_keys: set,
    violation_keys: set,
) -> DeltaChaseReport:
    """Apply a **normalized** delta to ``data`` in place.

    Mutates ``data.source_instance`` / ``data.chased`` / ``data.groundings``
    / ``data.violations``, keeps ``grounding_keys`` / ``violation_keys``
    (the identities of the live groundings and the canonical keys of the
    live violations) in sync, and maintains the adjacency indexes in
    place (fact ids stay stable).  Keeping the key sets session-lifetime
    matters twice
    over: lookups stay O(1) per found grounding instead of rebuilding a
    set per delta, and discarding dead keys on retraction is what lets a
    later re-insertion re-derive the same grounding.  Returns the id-space
    report the cluster maintenance layer works from.
    """
    report = DeltaChaseReport()
    source = data.source_instance
    chased = data.chased
    fact_ids = data.fact_ids

    # ------------------------------------------------------- retraction
    if delta.retracts:
        remaining_ids = {
            fact_ids[f] for f in source if f not in delta.retracts
        }
        alive = derivable_ids(remaining_ids, data)
        chased_ids = {fact_ids[f] for f in chased}
        report.dead_ids = chased_ids - alive

    if report.dead_ids:
        dead = report.dead_ids
        # Every grounding with a dead body fact (the per-fact adjacency
        # rows enumerate them directly) dies; likewise every violation.
        # Groundings whose head is dead always have a dead body too (a
        # fully-live body would keep the head derivable), so the body rows
        # find everything.
        dead_grounding_positions: set[int] = set()
        dead_violation_positions: set[int] = set()
        for fact_id in dead:
            dead_grounding_positions.update(data.occurs_in_body[fact_id])
            dead_violation_positions.update(data.violations_by_fact[fact_id])
        for index in dead_grounding_positions:
            report.removed_groundings += 1
            report.removed_grounding_head_ids.add(data.grounding_heads[index])
            grounding_keys.discard(grounding_key(*data.groundings[index]))
        remove_groundings(data, dead_grounding_positions)
        for index in dead_violation_positions:
            violation = data.violations[index]
            report.dead_violations.append(violation)
            violation_keys.discard(violation_key(violation))
        remove_violations(data, dead_violation_positions)

        facts_by_id = data.facts_by_id
        for fact_id in dead:
            chased.discard(facts_by_id[fact_id])
    for fact in delta.retracts:
        source.discard(fact)

    # -------------------------------------------------------- insertion
    if delta.inserts:
        queue: list[Fact] = []
        for fact in sorted(delta.inserts, key=repr):
            source.add(fact)
            if chased.add(fact):
                report.new_ids.add(data.intern_fact(fact))
                queue.append(fact)

        added: list[tuple] = []
        cursor = 0
        while cursor < len(queue):
            fact = queue[cursor]
            cursor += 1
            for entry in rule_index.entries_for(fact.relation):
                seed = entry.seed(fact)
                if seed is None:
                    continue
                join = entry.join(chased)
                # Materialize the matches before deriving: adding heads to
                # `chased` while the join iterates would mutate the live
                # extension sets.
                found = [
                    (entry.body_facts(binding), entry.ground(binding))
                    for binding in join.bindings(chased, seed)
                ]
                for body_facts, head_fact in found:
                    if head_fact in body_facts:
                        continue  # tautological; never a real derivation
                    added.append((entry.rule, body_facts, head_fact))
                    if chased.add(head_fact):
                        report.new_ids.add(data.intern_fact(head_fact))
                        queue.append(head_fact)

        # Pivoting one fact through several body positions (or two new
        # facts through one grounding) re-finds the same grounding: dedup
        # against both this batch and the surviving pre-delta groundings.
        for grounding in added:
            key = grounding_key(*grounding)
            if key in grounding_keys:
                continue
            grounding_keys.add(key)
            head_id, body_ids = append_grounding(data, grounding)
            report.added_groundings += 1
            report.added_grounding_fact_ids.add(head_id)
            report.added_grounding_fact_ids.update(body_ids)

        # New violations: every violation gaining a new body fact is found
        # by pivoting that fact (the whole body is present now the chase
        # has settled); all-old violations are already in `violation_keys`.
        facts_by_id = data.facts_by_id
        for fact_id in sorted(report.new_ids):
            fact = facts_by_id[fact_id]
            for entry in egd_index.entries_for(fact.relation):
                seed = entry.seed(fact)
                if seed is None:
                    continue
                join = entry.join(chased)
                for binding in join.bindings(chased, seed):
                    violation = grounded_egd_violation(entry.egd, binding)
                    if violation is None:
                        continue
                    key = violation_key(violation)
                    if key in violation_keys:
                        continue
                    violation_keys.add(key)
                    append_violation(data, violation)
                    report.new_violations.append(violation)

    # Memoized forward closures are stale wherever the delta touched the
    # grounding graph; they repopulate lazily on the next cluster build.
    data._influence_cache.clear()
    return report
