"""Incremental exchange maintenance: delta-chase and live clusters.

The paper's pipeline (chase → groundings → violation clusters → envelope
→ per-signature solve) localizes inconsistency to violation clusters with
bounded support sets — which is exactly what makes *incremental*
maintenance tractable: only clusters whose support meets a delta can
change.  This package maintains a materialized
:class:`~repro.xr.exchange.ExchangeData` (and the envelope analysis,
signature-program cache, and engine built on it) under source-tuple
inserts and retracts, without re-running the exchange from scratch.

Entry points:

- :class:`UpdateSession` (via ``ExchangeData.update_session()`` or
  ``SegmentaryEngine.update_session()``) applies :class:`Delta` batches;
- :func:`parse_update_stream` / :func:`render_update_stream` read and
  write the textual ``updates.txt`` format used by
  ``repro answer --updates`` and the fuzz corpus;
- :func:`apply_delta` is the reference (from-scratch) semantics the
  differential fuzz harness compares against.
"""

from repro.incremental.chase import (
    DeltaChaseReport,
    EgdIndex,
    apply_delta_chase,
)
from repro.incremental.delta import (
    Delta,
    apply_delta,
    parse_update_stream,
    render_update_stream,
)
from repro.incremental.session import SessionStats, UpdateReport, UpdateSession

__all__ = [
    "Delta",
    "DeltaChaseReport",
    "EgdIndex",
    "SessionStats",
    "UpdateReport",
    "UpdateSession",
    "apply_delta",
    "apply_delta_chase",
    "parse_update_stream",
    "render_update_stream",
]
