"""Update sessions: live cluster maintenance over a maintained exchange.

An :class:`UpdateSession` owns the mutable exchange state of one
:class:`~repro.xr.exchange.ExchangeData` (and optionally the
:class:`~repro.xr.envelope.EnvelopeAnalysis`, signature-program cache and
engine built on it) and applies :class:`~repro.incremental.delta.Delta`
batches in place:

1. **Delta-chase** (:mod:`repro.incremental.chase`): chased instance,
   groundings and violations maintained semi-naively; adjacency rebuilt
   with stable fact ids.
2. **Cluster maintenance**: a cluster is *touched* iff one of its
   violations died or its support closure / influence meets the delta's
   dirty set (dead facts, new facts, facts of added groundings, heads of
   removed groundings) — every structural change to a cluster funnels
   through one of those, so untouched clusters are **object-identical**
   afterwards (the cluster-locality property the fuzz harness checks).
   The violations of touched clusters plus the new violations are
   re-clustered from scratch; untouched clusters whose source envelopes
   meet the re-clustered pool's suspects are pulled in and merged
   (insertions can spawn *and* merge clusters; retraction can split them).
3. **Id hygiene and cache invalidation**: cluster ids are stable and
   monotonic.  A recomputed group identical to the touched cluster it came
   from (same violation objects, same closure/envelope/influence) keeps
   its object and id; everything else gets a fresh id and the old ids are
   *retired*.  A surviving cluster whose influence contains a fact whose
   safe/suspect status flipped also has its id retired (its focus — and
   hence its program — changed even though its membership did not).
   :meth:`~repro.runtime.cache.SignatureProgramCache.invalidate_clusters`
   then drops exactly the cache entries whose signature meets the retired
   ids; decisions about unaffected clusters survive the update.

Instrumented with :mod:`repro.obs`: span ``incremental.delta_chase``
around each applied delta, counters ``incremental.deltas_total``,
``incremental.clusters_touched`` and ``incremental.cache_invalidated``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chase.gav import RuleIndex
from repro.obs.recorder import NOOP_RECORDER, Recorder
from repro.relational.instance import Instance
from repro.xr.envelope import (
    EnvelopeAnalysis,
    ViolationCluster,
    build_cluster,
    cluster_violations,
    derivable_ids,
    support_closure_ids,
)
from repro.xr.exchange import ExchangeData, violation_key

from repro.incremental.chase import (
    DeltaChaseReport,
    EgdIndex,
    apply_delta_chase,
    grounding_key,
)
from repro.incremental.delta import Delta


@dataclass
class UpdateReport:
    """What one applied delta did, layer by layer."""

    inserted_source: int = 0
    retracted_source: int = 0
    facts_added: int = 0
    facts_removed: int = 0
    groundings_added: int = 0
    groundings_removed: int = 0
    violations_added: int = 0
    violations_removed: int = 0
    clusters_touched: int = 0
    clusters_retired: int = 0
    clusters_created: int = 0
    clusters_total: int = 0
    cache_invalidated: int = 0
    seconds: float = 0.0
    noop: bool = False
    retired_cluster_ids: frozenset[int] = frozenset()


@dataclass
class SessionStats:
    """Cumulative counters over the session's lifetime."""

    deltas_applied: int = 0
    noop_deltas: int = 0
    clusters_touched: int = 0
    clusters_retired: int = 0
    cache_invalidated: int = 0
    seconds: float = 0.0


class UpdateSession:
    """Maintain materialized exchange state under source-tuple updates.

    Construct via :meth:`ExchangeData.update_session` or
    :meth:`SegmentaryEngine.update_session`.  The session mutates the
    exchange data (and analysis, cache, engine stats) **in place** —
    including ``data.source_instance``, which an engine shares with its
    ``instance`` attribute.  Callers wanting to keep the pre-update
    instance must pass a copy when building the engine.
    """

    def __init__(
        self,
        data: ExchangeData,
        analysis: EnvelopeAnalysis | None = None,
        cache=None,
        obs: Recorder | None = None,
        engine=None,
    ) -> None:
        self.data = data
        self.analysis = analysis
        self.cache = cache
        self.obs = obs if obs is not None else NOOP_RECORDER
        self.engine = engine
        self.stats = SessionStats()
        tgds = list(data.mapping.all_tgds())
        self._rule_index = RuleIndex(tgds)
        self._egd_index = EgdIndex(data.mapping.target_egds)
        self._grounding_keys = {grounding_key(*g) for g in data.groundings}
        self._violation_keys = {violation_key(v) for v in data.violations}
        self._source_names = frozenset(data.mapping.source.names())

    # ------------------------------------------------------------- apply

    def apply(self, delta: Delta) -> UpdateReport:
        """Apply one delta; returns the per-layer report."""
        started = time.perf_counter()
        for fact in delta.inserts | delta.retracts:
            if fact.relation not in self._source_names:
                raise ValueError(
                    f"update mentions non-source relation "
                    f"{fact.relation!r}: {fact!r}"
                )
        effective = delta.normalized(self.data.source_instance)
        report = UpdateReport(noop=effective.is_noop())
        tracer, metrics = self.obs.tracer, self.obs.metrics
        if not report.noop:
            with tracer.span(
                "incremental.delta_chase",
                inserts=len(effective.inserts),
                retracts=len(effective.retracts),
            ):
                chase_report = apply_delta_chase(
                    self.data,
                    effective,
                    self._rule_index,
                    self._egd_index,
                    self._grounding_keys,
                    self._violation_keys,
                )
            report.inserted_source = len(effective.inserts)
            report.retracted_source = len(effective.retracts)
            report.facts_added = len(chase_report.new_ids)
            report.facts_removed = len(chase_report.dead_ids)
            report.groundings_added = chase_report.added_groundings
            report.groundings_removed = chase_report.removed_groundings
            report.violations_added = len(chase_report.new_violations)
            report.violations_removed = len(chase_report.dead_violations)

            if self.analysis is not None:
                with tracer.span("incremental.clusters"):
                    retired, touched, created = self._maintain_clusters(
                        chase_report
                    )
                report.clusters_touched = touched
                report.clusters_retired = len(retired)
                report.clusters_created = created
                report.retired_cluster_ids = frozenset(retired)
                report.clusters_total = len(self.analysis.clusters)
                if self.cache is not None and retired:
                    report.cache_invalidated = (
                        self.cache.invalidate_clusters(retired)
                    )
        if self.engine is not None:
            self.engine.refresh_exchange_stats()

        report.seconds = time.perf_counter() - started
        self.stats.deltas_applied += 1
        self.stats.noop_deltas += int(report.noop)
        self.stats.clusters_touched += report.clusters_touched
        self.stats.clusters_retired += report.clusters_retired
        self.stats.cache_invalidated += report.cache_invalidated
        self.stats.seconds += report.seconds
        if metrics.enabled:
            metrics.inc("incremental.deltas_total")
            metrics.inc(
                "incremental.clusters_touched", report.clusters_touched
            )
            metrics.inc(
                "incremental.cache_invalidated", report.cache_invalidated
            )
        return report

    def apply_stream(self, deltas) -> list[UpdateReport]:
        """Apply a list of deltas in order."""
        return [self.apply(delta) for delta in deltas]

    # ----------------------------------------------- cluster maintenance

    def _maintain_clusters(
        self, chase_report: DeltaChaseReport
    ) -> tuple[set[int], int, int]:
        """Recompute exactly the clusters the delta could have changed.

        Returns ``(retired cluster ids, touched count, created count)``
        and leaves ``self.analysis`` updated in place (same object — the
        engine keeps its reference).
        """
        analysis = self.analysis
        data = self.data
        assert analysis is not None
        dirty = chase_report.dirty_ids()
        dead_violations = {id(v) for v in chase_report.dead_violations}

        untouched: list[ViolationCluster] = []
        touched: list[ViolationCluster] = []
        for cluster in analysis.clusters:
            if (
                any(id(v) in dead_violations for v in cluster.violations)
                or not dirty.isdisjoint(cluster.closure_ids)
                or not dirty.isdisjoint(cluster.influence_ids)
            ):
                touched.append(cluster)
            else:
                untouched.append(cluster)

        # Pool to re-cluster: surviving violations of touched clusters plus
        # the new ones.  Untouched clusters whose source envelope meets the
        # pool's suspect facts must merge with it — pull them in and
        # repeat until the pool is closed (a pulled-in cluster's own
        # envelope can overlap further clusters).
        pool = [
            v
            for cluster in touched
            for v in cluster.violations
            if id(v) not in dead_violations
        ]
        pool.extend(chase_report.new_violations)
        source_mask = data.source_id_mask
        closures = [
            support_closure_ids(set(data.violation_body_ids(v)), data)
            for v in pool
        ]
        while True:
            pool_suspects = {
                fact_id
                for closure in closures
                for fact_id in closure
                if source_mask[fact_id]
            }
            pulled = [
                cluster
                for cluster in untouched
                if not pool_suspects.isdisjoint(cluster.source_envelope_ids)
            ]
            if not pulled:
                break
            for cluster in pulled:
                untouched.remove(cluster)
                touched.append(cluster)
                for violation in cluster.violations:
                    pool.append(violation)
                    closures.append(
                        support_closure_ids(
                            set(data.violation_body_ids(violation)), data
                        )
                    )

        # Regroup the pool and rebuild its clusters, reusing a touched
        # cluster (object and id) when the recomputation reproduced it
        # exactly — clusters touched only conservatively keep their cached
        # decisions that way.
        by_members = {
            frozenset(id(v) for v in cluster.violations): cluster
            for cluster in touched
        }
        rebuilt: list[ViolationCluster] = []
        retired: set[int] = set()
        reused: set[int] = set()
        for member_positions in cluster_violations(closures, data):
            members = [pool[p] for p in member_positions]
            closure_ids: set[int] = set()
            for position in member_positions:
                closure_ids |= closures[position]
            previous = by_members.get(frozenset(id(v) for v in members))
            if previous is not None:
                candidate = build_cluster(
                    previous.index, members, [], closure_ids, data
                )
                if (
                    candidate.closure_ids == previous.closure_ids
                    and candidate.source_envelope_ids
                    == previous.source_envelope_ids
                    and candidate.influence_ids == previous.influence_ids
                ):
                    rebuilt.append(previous)
                    reused.add(id(previous))
                    continue
            fresh_id = analysis.next_cluster_id
            analysis.next_cluster_id += 1
            rebuilt.append(
                build_cluster(fresh_id, members, [], closure_ids, data)
            )
        retired.update(
            cluster.index for cluster in touched if id(cluster) not in reused
        )

        clusters = untouched + rebuilt

        # Safe/suspect recomputation (suspects = union of final envelopes)
        # and focus-flip detection: a surviving cluster whose influence
        # holds a fact whose safety flipped gets a *fresh id* — its repair
        # program (focus = influence − safe) changed even though its
        # membership and envelope did not — so stale cache entries die.
        # Freshly-built clusters already carry fresh ids.
        old_safe_ids = analysis.safe_ids
        suspect_ids: set[int] = set()
        for cluster in clusters:
            suspect_ids |= cluster.source_envelope_ids
        source_ids = {data.fact_ids[f] for f in data.source_instance}
        safe_id_set = derivable_ids(source_ids - suspect_ids, data)
        flipped = old_safe_ids.symmetric_difference(safe_id_set)
        if flipped:
            survivors = {id(c) for c in untouched} | reused
            for cluster in clusters:
                if id(cluster) in survivors and not flipped.isdisjoint(
                    cluster.influence_ids
                ):
                    retired.add(cluster.index)
                    cluster.index = analysis.next_cluster_id
                    analysis.next_cluster_id += 1
        clusters.sort(key=lambda c: c.index)

        facts_by_id = data.facts_by_id
        analysis.clusters = clusters
        analysis.suspect_source = {
            facts_by_id[fact_id] for fact_id in suspect_ids
        }
        analysis.safe_source = (
            set(data.source_instance) - analysis.suspect_source
        )
        analysis.safe_chased = Instance(
            facts_by_id[fact_id] for fact_id in sorted(safe_id_set)
        )
        analysis.safe_ids = frozenset(safe_id_set)
        analysis.invalidate_cluster_lookup()

        # Positional bookkeeping: violation indexes into the compacted
        # violation list, and the fact → cluster-id membership map.
        position_of = {
            id(violation): position
            for position, violation in enumerate(data.violations)
        }
        membership: dict = {}
        for cluster in clusters:
            cluster.violation_indexes = sorted(
                position_of[id(violation)] for violation in cluster.violations
            )
            for fact_id in cluster.influence_ids:
                membership.setdefault(facts_by_id[fact_id], set()).add(
                    cluster.index
                )
        analysis.cluster_membership = membership

        return retired, len(touched), len(rebuilt) - len(reused)
