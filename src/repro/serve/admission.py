"""Admission control: a bounded in-flight count plus a bounded wait queue.

XR-Certain solving is Πp2-hard, so a single expensive query can pin a
worker for its whole budget; letting an unbounded number of requests pile
onto the engine just converts overload into memory growth and tail
latency.  The controller gives the server an explicit capacity model:

- at most ``max_inflight`` requests execute concurrently;
- at most ``max_queue`` more may *wait* for a slot;
- a waiter that cannot get a slot within ``queue_timeout`` seconds is
  rejected.

Requests beyond both bounds are rejected **immediately** with
:class:`AdmissionRejected`, which the HTTP layer maps to a 429 response
with a ``Retry-After`` hint — load is shed at the door, before any
engine work happens.  Rejection is loss-free for the client: nothing was
partially computed, so a straight retry is always safe.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class AdmissionRejected(Exception):
    """The server is over capacity; retry after ``retry_after`` seconds."""

    def __init__(self, reason: str, retry_after: float = 1.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


class AdmissionController:
    """Counting-semaphore admission with a bounded, timed wait queue."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 2.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout <= 0:
            raise ValueError(
                f"queue_timeout must be positive, got {queue_timeout}"
            )
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one execution slot; raises :class:`AdmissionRejected`
        when the server is saturated (queue full or wait timed out)."""
        self._acquire()
        try:
            yield
        finally:
            self._release()

    def _acquire(self) -> None:
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._waiting >= self.max_queue:
                raise AdmissionRejected(
                    f"admission queue full ({self._waiting} waiting, "
                    f"{self._inflight} in flight)",
                    retry_after=self.queue_timeout,
                )
            self._waiting += 1
            try:
                cutoff = time.monotonic() + self.queue_timeout
                while self._inflight >= self.max_inflight:
                    remaining = cutoff - time.monotonic()
                    if remaining <= 0:
                        raise AdmissionRejected(
                            f"no execution slot within {self.queue_timeout}s",
                            retry_after=self.queue_timeout,
                        )
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1
            self._inflight += 1

    def _release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify()

    def snapshot(self) -> dict:
        """Current occupancy (diagnostics for ``/healthz``)."""
        with self._cond:
            return {
                "inflight": self._inflight,
                "waiting": self._waiting,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
            }
