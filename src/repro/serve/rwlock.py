"""A writer-preferring readers–writer lock for the serving tier.

The serving workload is read-mostly by construction: queries (readers)
vastly outnumber updates (writers), and PR 7's :class:`UpdateSession`
mutates the exchange state **in place** — so a query overlapping an
update could observe a half-applied delta (chased facts from the new
state joined against clusters from the old one).  The seam between the
two is this lock:

- any number of concurrent **readers** (queries) share the lock;
- one **writer** (an update) holds it exclusively;
- the writer is **preferred**: once a writer is waiting, new readers
  queue behind it, so a steady query stream cannot starve updates.

Writers are additionally serialized among themselves (single-writer
semantics fall out of exclusivity), which is exactly what
:class:`UpdateSession` requires.

Plain :class:`threading.Condition` machinery — no busy waiting, and the
uncontended reader path is one lock acquire + two integer updates.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Writer-preferring shared/exclusive lock (not reentrant)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------ readers

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the lock shared; False on timeout (lock not taken)."""
        with self._cond:
            acquired = self._cond.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout=timeout,
            )
            if not acquired:
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                raise RuntimeError("release_read without acquire_read")
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------ writers

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Take the lock exclusive; False on timeout (lock not taken)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                acquired = self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout=timeout,
                )
                if not acquired:
                    return False
                self._writer_active = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # -------------------------------------------------- context managers

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def snapshot(self) -> dict:
        """Current holder counts (diagnostics for ``/healthz``)."""
        with self._cond:
            return {
                "readers": self._readers,
                "writer_active": self._writer_active,
                "writers_waiting": self._writers_waiting,
            }
