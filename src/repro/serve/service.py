"""The query service: one warm engine, many concurrent requests.

This is the object the HTTP layer (and the in-process tests) talk to.
It owns exactly one of everything expensive:

- one :class:`~repro.xr.segmentary.SegmentaryEngine`, its exchange phase
  materialized **once at construction** (so the first request pays no
  exchange cost and concurrent first requests cannot race to build it);
- one shared :class:`~repro.runtime.SignatureProgramCache`, bounded so a
  long-lived process has a bounded footprint;
- one :class:`~repro.incremental.UpdateSession` applying every write;
- one live :class:`~repro.obs.Metrics` registry, exported at
  ``/metrics`` (the tracer stays NOOP — span trees grow without bound
  in a long-lived process, so tracing is a per-run CLI affair).

Concurrency model (DESIGN.md §13):

- queries take the :class:`~repro.serve.rwlock.RWLock` **shared** and
  run truly concurrently on the engine — safe because the read path's
  shared mutable state is internally locked (cache, executor dispatch,
  one-time exchange) and each request carries its *own*
  :class:`~repro.runtime.SolveBudget` (never mutating engine state);
- updates take the lock **exclusive** (single-writer seam): an in-flight
  query never observes a half-applied delta, and the writer-preferring
  lock keeps a steady query stream from starving updates;
- the :class:`~repro.serve.admission.AdmissionController` bounds how
  many queries execute or wait, shedding overload at the door.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.dependencies.mapping import SchemaMapping
from repro.incremental import Delta
from repro.obs.export import to_prometheus
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, Metrics
from repro.obs.recorder import Recorder
from repro.obs.tracing import NOOP_TRACER
from repro.reduction.reduce import ReducedMapping
from repro.relational.instance import Instance
from repro.runtime.budget import NO_BUDGET, SolveBudget
from repro.runtime.cache import SignatureProgramCache
from repro.xr.segmentary import SegmentaryEngine

from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.protocol import (
    QueryRequest,
    answer_payload,
    request_budget,
    update_payload,
)
from repro.serve.rwlock import RWLock


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs (every one also a ``repro serve`` CLI flag)."""

    jobs: int = 1
    solve_strategy: str = "incremental"
    # Budget ceiling: per-request budgets are capped by these (a client
    # can tighten its own SLO, never loosen the server's).
    deadline: float | None = None
    task_timeout: float | None = None
    max_retries: int = 0
    # Admission control.
    max_inflight: int = 8
    max_queue: int = 16
    queue_timeout: float = 2.0
    # Cache bounds (entries per layer); None = unbounded.
    max_programs: int | None = 4096
    max_decisions: int | None = 65536

    def budget_ceiling(self) -> SolveBudget:
        if (
            self.deadline is None
            and self.task_timeout is None
            and self.max_retries == 0
        ):
            return NO_BUDGET
        return SolveBudget(
            deadline=self.deadline,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
        )


class QueryService:
    """A warm engine behind a readers–writer seam and admission control."""

    def __init__(
        self,
        mapping: SchemaMapping | ReducedMapping,
        instance: Instance,
        config: ServiceConfig | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = Metrics()
        self.obs = Recorder(tracer=NOOP_TRACER, metrics=self.metrics)
        self.cache = SignatureProgramCache(
            max_programs=self.config.max_programs,
            max_decisions=self.config.max_decisions,
        )
        self.cache.metrics = self.metrics
        self.engine = SegmentaryEngine(
            mapping,
            instance,
            jobs=self.config.jobs,
            cache=self.cache,
            obs=self.obs,
            solve_strategy=self.config.solve_strategy,
        )
        self._ceiling = self.config.budget_ceiling()
        self.rwlock = RWLock()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
        )
        self._started = time.monotonic()
        # Materialize the exchange now: requests never pay it, and the
        # lazily-built lookup structures are warm before concurrency
        # begins.
        self.engine.exchange()
        self.session = self.engine.update_session()

    # ------------------------------------------------------------- reads

    def query(self, request: QueryRequest) -> dict:
        """Answer one request; raises :class:`AdmissionRejected` when the
        server is saturated.  Over-budget requests degrade (never 500):
        ``allow_partial=True`` surfaces ``unknown_candidates`` instead of
        raising."""
        self.metrics.inc("serve_requests_total")
        started = time.perf_counter()
        try:
            with self.admission.admit():
                with self.rwlock.read_locked():
                    answers, stats = self.engine.answer_with_stats(
                        request.query,
                        mode=request.mode,
                        allow_partial=True,
                        budget=request_budget(request, self._ceiling),
                    )
        except AdmissionRejected:
            self.metrics.inc("serve_rejected_total")
            raise
        if stats.degraded:
            self.metrics.inc("serve_degraded_total")
        self.metrics.histogram(
            "serve_request_seconds", DEFAULT_TIME_BUCKETS
        ).observe(time.perf_counter() - started)
        return answer_payload(request, answers, stats)

    # ------------------------------------------------------------ writes

    def update(self, deltas: list[Delta]) -> dict:
        """Apply delta steps in order under the exclusive lock."""
        with self.rwlock.write_locked():
            reports = [self.session.apply(delta) for delta in deltas]
        self.metrics.inc("serve_updates_total", len(reports))
        return update_payload(reports)

    # ------------------------------------------------------- diagnostics

    def health(self) -> dict:
        exchange = self.engine.exchange_stats
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started,
            "admission": self.admission.snapshot(),
            "lock": self.rwlock.snapshot(),
            "exchange": {
                "source_facts": exchange.source_facts,
                "chased_facts": exchange.chased_facts,
                "violations": exchange.violations,
                "clusters": exchange.clusters,
            },
            "cache_entries": len(self.cache),
        }

    def metrics_text(self) -> str:
        return to_prometheus(self.metrics)

    def close(self) -> None:
        self.engine.close()
