"""The HTTP surface of ``repro serve`` — stdlib only.

:class:`ReproServer` is a :class:`http.server.ThreadingHTTPServer`
(one daemon thread per connection, ``socketserver`` threading mix-in
underneath) wrapping one :class:`~repro.serve.service.QueryService`.
HTTP/1.1 with explicit ``Content-Length`` on every response, so clients
keep connections alive across requests — the load harness depends on it.

Routes:

========  =========  ====================================================
method    path       meaning
========  =========  ====================================================
GET       /healthz   liveness + occupancy snapshot (JSON)
GET       /metrics   Prometheus exposition text of the live registry
POST      /query     answer an XR query (see :mod:`repro.serve.protocol`)
POST      /update    apply an update stream through the single writer
========  =========  ====================================================

Status mapping: 400 for protocol errors (malformed body, unparsable
query), 429 + ``Retry-After`` for admission rejections, 404/405 for bad
routes, 500 only for genuine bugs — an over-budget query is **not** an
error (it returns 200 with ``degraded: true`` and the unknown
candidates listed, the PR 4 semantics).

:func:`run_serve` is the CLI entry: it serves from a background thread
and parks the main thread on an event that SIGTERM/SIGINT set, then
shuts the listener down cleanly (finishing in-flight requests) — calling
``shutdown()`` from the serving thread itself would deadlock, which is
why the signal handler only sets the event.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.serve.admission import AdmissionRejected
from repro.serve.protocol import (
    ProtocolError,
    parse_query_request,
    parse_update_request,
)
from repro.serve.service import QueryService

#: Refuse bodies above this size before reading them (a parse-time
#: memory bound, not a capacity knob).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ReproServer(ThreadingHTTPServer):
    """One listening socket, one shared :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: QueryService):
        super().__init__(address, ServeHandler)
        self.service = service


class ServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # The default handler logs every request to stderr; a load test at a
    # few hundred QPS would drown the console.
    def log_message(self, format: str, *args) -> None:
        pass

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -------------------------------------------------------------- GET

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, self.service.health())
        elif self.path == "/metrics":
            self._send_text(200, self.service.metrics_text())
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    # ------------------------------------------------------------- POST

    def do_POST(self) -> None:
        if self.path not in ("/query", "/update"):
            self._send_json(404, {"error": f"no such path: {self.path}"})
            return
        try:
            payload = self._read_json_body()
            if self.path == "/query":
                body = self.service.query(parse_query_request(payload))
            else:
                body = self.service.update(parse_update_request(payload))
        except ProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
        except AdmissionRejected as exc:
            self._send_json(
                429,
                {"error": exc.reason, "retry_after": exc.retry_after},
                extra_headers={"Retry-After": f"{exc.retry_after:.0f}"},
            )
        except ValueError as exc:
            # e.g. an update naming a non-source relation.
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — the 500 boundary
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, body)

    def _read_json_body(self) -> object:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ProtocolError("Content-Length required")
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(f"bad Content-Length: {length!r}") from None
        if size < 0 or size > MAX_BODY_BYTES:
            raise ProtocolError(f"body size {size} out of range")
        raw = self.rfile.read(size)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from exc

    # ---------------------------------------------------------- writing

    def _send_json(
        self,
        code: int,
        body: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        encoded = json.dumps(body, sort_keys=True).encode("utf-8")
        self._send_bytes(code, encoded, "application/json", extra_headers)

    def _send_text(self, code: int, text: str) -> None:
        self._send_bytes(
            code, text.encode("utf-8"), "text/plain; charset=utf-8"
        )

    def _send_bytes(
        self,
        code: int,
        encoded: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)


def run_serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    log: Callable[[str], None] = print,
) -> int:
    """Serve until SIGTERM/SIGINT; returns 0 on clean shutdown.

    Must be called from the main thread (signal handlers).  The listener
    runs in a background thread; the main thread parks on an event so
    ``shutdown()`` is never called from the serving thread (deadlock).
    """
    server = ReproServer((host, port), service)
    stop = threading.Event()

    def handle_signal(signum, frame) -> None:
        stop.set()

    previous = {
        signum: signal.signal(signum, handle_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    log(f"% serving on http://{bound_host}:{bound_port} (SIGTERM to stop)")
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()
        service.close()
    log("% shut down cleanly")
    return 0
