"""The serve wire protocol: JSON requests in, JSON answers out.

Kept deliberately small and deterministic:

- ``POST /query`` body: ``{"query": "q(x) :- T(x, y).", "mode":
  "certain" | "possible", "deadline": seconds?, "task_timeout":
  seconds?}`` — the query text is the same surface syntax as
  ``repro answer -q``; the optional budget fields set the
  **per-request** :class:`~repro.runtime.SolveBudget` (capped by the
  server's configured ceiling so a client cannot opt out of the SLO).
- ``POST /update`` body: ``{"updates": "+R('a').\\n-S('b')."}`` — the
  textual update-stream format of ``repro answer --updates``
  (blank-line-separated steps, each applied atomically in order).

Answer rows serialize **canonically**: every value is rendered with
``repr`` (the same rendering the CLI prints and the fuzz corpus stores),
rows are sorted by that rendering, and the row list is emitted in sorted
order.  Two answer sets are equal iff their serialized payloads are
bytewise equal — which is exactly what the concurrent-vs-sequential
differential check compares.

Malformed input raises :class:`ProtocolError`; the HTTP layer maps it to
a 400 with the message in the body.  A protocol error never reaches the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.incremental import Delta, parse_update_stream
from repro.parser import parse_program
from repro.relational.queries import UnionOfConjunctiveQueries
from repro.runtime.budget import SolveBudget


class ProtocolError(Exception):
    """A malformed request (bad JSON shape, unparsable query, bad knob)."""


MODES = ("certain", "possible")


@dataclass
class QueryRequest:
    """One parsed ``/query`` request."""

    query: UnionOfConjunctiveQueries
    query_text: str
    mode: str = "certain"
    deadline: float | None = None
    task_timeout: float | None = None


def _positive_or_none(payload: dict, field: str) -> float | None:
    value = payload.get(field)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"{field!r} must be a number, got {value!r}")
    if value <= 0:
        raise ProtocolError(f"{field!r} must be positive, got {value!r}")
    return float(value)


def parse_query_request(payload: object) -> QueryRequest:
    """Validate and parse a ``/query`` JSON body."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    text = payload.get("query")
    if not isinstance(text, str) or not text.strip():
        raise ProtocolError("'query' must be a non-empty string")
    mode = payload.get("mode", "certain")
    if mode not in MODES:
        raise ProtocolError(f"'mode' must be one of {MODES}, got {mode!r}")
    unknown = set(payload) - {"query", "mode", "deadline", "task_timeout"}
    if unknown:
        raise ProtocolError(f"unknown field(s): {sorted(unknown)}")
    try:
        query = parse_program(text)
    except Exception as exc:
        raise ProtocolError(f"unparsable query: {exc}") from exc
    return QueryRequest(
        query=query,
        query_text=text,
        mode=mode,
        deadline=_positive_or_none(payload, "deadline"),
        task_timeout=_positive_or_none(payload, "task_timeout"),
    )


def request_budget(
    request: QueryRequest, ceiling: SolveBudget
) -> SolveBudget:
    """The effective per-request budget: the request's knobs, each capped
    by the server's configured ceiling (a client can tighten the SLO but
    never loosen it)."""

    def tightest(ours: float | None, theirs: float | None) -> float | None:
        if ours is None:
            return theirs
        if theirs is None:
            return ours
        return min(ours, theirs)

    deadline = tightest(ceiling.deadline, request.deadline)
    task_timeout = tightest(ceiling.task_timeout, request.task_timeout)
    if deadline is None and task_timeout is None and ceiling.is_null:
        return ceiling  # NO_BUDGET singleton stays shared
    return SolveBudget(
        deadline=deadline,
        task_timeout=task_timeout,
        max_retries=ceiling.max_retries,
        retry_backoff=ceiling.retry_backoff,
        backoff_cap=ceiling.backoff_cap,
    )


def parse_update_request(payload: object) -> list[Delta]:
    """Validate and parse an ``/update`` JSON body into delta steps."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    text = payload.get("updates")
    if not isinstance(text, str) or not text.strip():
        raise ProtocolError("'updates' must be a non-empty string")
    unknown = set(payload) - {"updates"}
    if unknown:
        raise ProtocolError(f"unknown field(s): {sorted(unknown)}")
    try:
        deltas = parse_update_stream(text)
    except Exception as exc:
        raise ProtocolError(f"unparsable update stream: {exc}") from exc
    if not deltas:
        raise ProtocolError("update stream contains no steps")
    return deltas


# ------------------------------------------------------------- responses


def serialize_rows(rows: set[tuple]) -> list[list[str]]:
    """Canonical row serialization: ``repr`` per value, rows sorted.

    ``repr`` round-trips every value the parser can produce (strings,
    ints) and is the rendering the CLI prints; sorting makes the payload
    deterministic, so bit-identical answer sets produce bytewise-equal
    JSON — the property the differential check relies on.
    """
    return sorted([repr(value) for value in row] for row in rows)


def answer_payload(
    request: QueryRequest, answers: set[tuple], stats
) -> dict:
    """The ``/query`` response body for one answered request."""
    payload = {
        "query": request.query_text,
        "mode": request.mode,
        "name": request.query.name,
        "rows": serialize_rows(answers),
        "degraded": stats.degraded,
        "stats": {
            "seconds": stats.seconds,
            "candidates": stats.candidates,
            "signatures": stats.signatures,
            "programs_solved": stats.programs_solved,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "timeouts": stats.timeouts,
            "executor": stats.executor,
            "strategy": stats.strategy,
        },
    }
    if stats.degraded:
        # PR 4 degraded-answer semantics, surfaced on the wire: these
        # candidates were cut off by the budget — excluded from certain
        # answers, conservatively included in possible answers.
        payload["unknown_candidates"] = serialize_rows(
            stats.unknown_candidates
        )
    return payload


def update_payload(reports) -> dict:
    """The ``/update`` response body: per-step and total effects."""
    return {
        "steps": [
            {
                "noop": report.noop,
                "inserted_source": report.inserted_source,
                "retracted_source": report.retracted_source,
                "clusters_touched": report.clusters_touched,
                "clusters_retired": report.clusters_retired,
                "cache_invalidated": report.cache_invalidated,
                "seconds": report.seconds,
            }
            for report in reports
        ],
        "applied": len(reports),
    }
