"""The serving tier: a long-lived XR query service (``repro serve``).

ROADMAP item 1's "heavy traffic" milestone: scenarios load **once**, a
warm :class:`~repro.xr.segmentary.SegmentaryEngine` answers concurrent
XR-Certain/XR-Possible queries over HTTP JSON, per-request
:class:`~repro.runtime.SolveBudget` deadlines are the SLO layer (PR 4's
degraded-answer semantics on the wire instead of 500s), writes flow
through PR 7's single-writer :class:`~repro.incremental.UpdateSession`
behind a readers–writer seam, and PR 5's metrics registry is exported
live at ``/metrics``.

Layers (each its own module, stdlib only):

- :mod:`repro.serve.rwlock` — writer-preferring readers–writer lock;
- :mod:`repro.serve.admission` — bounded in-flight + bounded wait queue;
- :mod:`repro.serve.protocol` — JSON request/response schema, canonical
  (sorted, ``repr``-rendered) answer rows;
- :mod:`repro.serve.service` — :class:`QueryService`, the warm engine
  behind the seam (usable in-process, no HTTP required);
- :mod:`repro.serve.http` — the ``ThreadingHTTPServer`` surface and the
  SIGTERM-clean :func:`run_serve` loop.
"""

from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.http import ReproServer, run_serve
from repro.serve.protocol import (
    ProtocolError,
    QueryRequest,
    answer_payload,
    parse_query_request,
    parse_update_request,
    request_budget,
    serialize_rows,
)
from repro.serve.rwlock import RWLock
from repro.serve.service import QueryService, ServiceConfig

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ProtocolError",
    "QueryRequest",
    "QueryService",
    "ReproServer",
    "RWLock",
    "ServiceConfig",
    "answer_payload",
    "parse_query_request",
    "parse_update_request",
    "request_budget",
    "run_serve",
    "serialize_rows",
]
