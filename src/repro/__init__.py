"""repro: XR-Certain query answering in data exchange.

A complete reimplementation of *Practical Query Answering in Data Exchange
Under Inconsistency-Tolerant Semantics* (ten Cate, Halpert, Kolaitis,
EDBT 2016): schema mappings, the chase, the GLAV-to-GAV reduction, a
disjunctive-logic-programming solver (the role clingo plays in the paper),
the monolithic and segmentary XR-Certain engines, and the UCSC Genome
Browser benchmark scenario.

Quickstart::

    from repro import (
        parse_mapping, parse_query, Instance, Fact, SegmentaryEngine,
    )

    mapping = parse_mapping('''
        SOURCE R/2.  TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
    ''')
    instance = Instance([Fact("R", ("a", "b")), Fact("R", ("a", "c"))])
    engine = SegmentaryEngine(mapping, instance)
    answers = engine.answer(parse_query("q(x) :- P(x, y)."))
"""

from repro.relational import (
    Atom,
    ConjunctiveQuery,
    Const,
    Fact,
    Instance,
    Null,
    RelationSymbol,
    Schema,
    SkolemValue,
    UnionOfConjunctiveQueries,
    Variable,
    evaluate,
    evaluate_constants_only,
)
from repro.dependencies import EGD, TGD, SchemaMapping, is_weakly_acyclic
from repro.parser import (
    parse_dependency,
    parse_instance,
    parse_mapping,
    parse_program,
    parse_query,
)
from repro.chase import (
    canonical_universal_solution,
    gav_chase,
    has_solution,
    standard_chase,
)
from repro.reduction import ReducedMapping, reduce_mapping
from repro.xr import (
    MonolithicEngine,
    SegmentaryEngine,
    source_repairs,
    xr_certain_oracle,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Const",
    "EGD",
    "Fact",
    "Instance",
    "MonolithicEngine",
    "Null",
    "ReducedMapping",
    "RelationSymbol",
    "Schema",
    "SchemaMapping",
    "SegmentaryEngine",
    "SkolemValue",
    "TGD",
    "UnionOfConjunctiveQueries",
    "Variable",
    "canonical_universal_solution",
    "evaluate",
    "evaluate_constants_only",
    "gav_chase",
    "has_solution",
    "is_weakly_acyclic",
    "parse_dependency",
    "parse_instance",
    "parse_mapping",
    "parse_program",
    "parse_query",
    "reduce_mapping",
    "source_repairs",
    "standard_chase",
    "xr_certain_oracle",
    "__version__",
]
